"""Optional compiled kernel behind :class:`~repro.kernels.stencil.StencilOperator`.

The pure-numpy stencil product pays one multiply pass and one add pass
per diagonal; at solver sizes the arrays are cache-resident, so those
extra sweeps — not DRAM — are the bottleneck.  The C kernel here fuses
the whole product into a single pass per row::

    out[i] = (out[i] +) c₀·x[i+o₀] + c₁·x[i+o₁] + … + c_d·x[i+o_d]

using the *dominant constant* of each diagonal (a regular-mesh diagonal
is one number almost everywhere), then overwrites the handful of
"special" rows — boundary margins plus the rows where any diagonal
deviates from its constant — with the exact per-row sum.  Per output
element the terms still accumulate in ascending-offset order, i.e.
ascending column order per row, so the result is **bitwise identical**
to both the numpy shifted-slice path and scipy's ``csr_matvec``.

Compilation happens lazily, once per interpreter, with ``cc`` into a
content-hashed shared library under ``_build/`` next to this module; the
flags deliberately include ``-ffp-contract=off`` so no fused
multiply-add can change the rounding of the ``mul → add`` chain.  When
no compiler is available (or ``REPRO_NO_NATIVE`` is set) the loader
returns ``None`` and the operator silently keeps its numpy path — the
kernel is an accelerator, never a dependency.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["load_native"]

#: Generated cases of the fixed-diagonal-count fused loop.  Constant trip
#: counts let the compiler unroll the diagonal chain and vectorize the
#: row loop; diagonal counts outside the set fall back to the runtime
#: loop (still one pass, just scalar).  5 covers the scalar 5-point
#: stencils, 18 the interleaved two-dof plate stencil.
_SPECIALIZED = (3, 5, 9, 18)

_CASE_TEMPLATE = """
        case {nd}:
            for (i = lo; i < hi; ++i) {{
                double acc = accumulate ? out[i] : 0.0;
                for (k = 0; k < {nd}; ++k)
                    acc += cs[k] * x[i + offs[k]];
                out[i] = acc;
            }}
            break;
"""

_BLOCK_CASE_TEMPLATE = """
        case {nd}:
            for (i = lo; i < hi; ++i) {{
                const double *xr = x + (size_t)i * nc;
                double *orow = out + (size_t)i * nc;
                for (c = 0; c < nc; ++c) {{
                    double acc = accumulate ? orow[c] : 0.0;
                    for (k = 0; k < {nd}; ++k)
                        acc += cs[k] * xr[(ptrdiff_t)offs[k] * nc + c];
                    orow[c] = acc;
                }}
            }}
            break;
"""


#: Specialized entry counts of the fused sweep's interior rows.  Constant
#: trip counts let the compiler unroll the short gather chain per row;
#: 1–12 covers every color half of the 5-point scalar stencils (4) and
#: the 18-diagonal interleaved plate stencil (up to 11).
_SWEEP_NE = tuple(range(1, 13))

_SWEEP_CASE_TEMPLATE = """
        case {ne}:
            for (q = qa; q < qb; ++q) {{
                const long row = rows[q];
                const double *crow = cm + (size_t)(q - g0) * {ne};
                double acc = 0.0;
{terms}                SSOR_TAIL_V
            }}
            break;
"""


def _sweep_case(ne: int) -> str:
    terms = "".join(
        f"                acc += crow[{i}] * rt[row + offs[{i}]];\n"
        for i in range(ne)
    )
    return _SWEEP_CASE_TEMPLATE.format(ne=ne, terms=terms)


#: Specialized RHS widths of the fused block sweep.  A compile-time k
#: turns the per-row column loops into fully unrolled straight-line SIMD
#: (the runtime-k loop pays ~2× at k ≤ 6); wider blocks fall back to the
#: generic body, whose per-element cost is already amortized.
_BLOCK_K = tuple(range(1, 9))

_BLOCK_ROWS_TEMPLATE = """
static void ssor_rows_b_k{kk}(
    long n, long k, long qa, long qb, long g0, long ne,
    const long *rows, const double *diag, const long *offs, const double *cm,
    double alpha, const double *r, double *rt, double *y, double *acc,
    int use_y, int do_solve, int store_y, int clip)
{{
    long q, e, j;
    (void)k;
    for (q = qa; q < qb; ++q) {{
        const long row = rows[q];
        const double *crow = cm + (size_t)(q - g0) * (size_t)ne;
        double *yq = y + (size_t)q * {kk};
        for (j = 0; j < {kk}; ++j)
            acc[j] = 0.0;
        for (e = 0; e < ne; ++e) {{
            long col = row + offs[e];
            const double cf = crow[e];
            const double *rc;
            if (clip) {{
                if (col < 0) col = 0; else if (col >= n) col = n - 1;
            }}
            rc = rt + (size_t)col * {kk};
            for (j = 0; j < {kk}; ++j)
                acc[j] += cf * rc[j];
        }}
        if (do_solve) {{
            const double *rr = r + (size_t)row * {kk};
            double *rtr = rt + (size_t)row * {kk};
            const double d = diag[q];
            for (j = 0; j < {kk}; ++j) {{
                double ar = alpha * rr[j];
                double z = use_y ? ((ar - yq[j]) - acc[j]) : (ar - acc[j]);
                rtr[j] = z / d;
            }}
        }}
        if (store_y)
            for (j = 0; j < {kk}; ++j)
                yq[j] = acc[j];
    }}
}}
"""


def _source() -> str:
    vec_cases = "".join(_CASE_TEMPLATE.format(nd=nd) for nd in _SPECIALIZED)
    blk_cases = "".join(_BLOCK_CASE_TEMPLATE.format(nd=nd) for nd in _SPECIALIZED)
    sweep_cases = "".join(_sweep_case(ne) for ne in _SWEEP_NE)
    block_rows = "".join(_BLOCK_ROWS_TEMPLATE.format(kk=kk) for kk in _BLOCK_K)
    block_dispatch = "".join(
        f"    case {kk}:\n"
        f"        ssor_rows_b_k{kk}(n, k, qa, qb, g0, ne, rows, diag, offs, cm,\n"
        f"                    alpha, r, rt, y, acc, use_y, do_solve, store_y, clip);\n"
        f"        return;\n"
        for kk in _BLOCK_K
    )
    return (
        """
#include <stddef.h>

/* Exact sum of one special row: true per-diagonal values, window-checked.
   Ascending k is ascending column order — the csr_matvec association. */
static double special_row(
    long i, long n, long nd, const long *offs,
    const double *svals, long nspecial, long t, const double *x)
{
    double acc = 0.0;
    long k;
    for (k = 0; k < nd; ++k) {
        long j = i + offs[k];
        if (j >= 0 && j < n)
            acc += svals[(size_t)k * (size_t)nspecial + (size_t)t] * x[j];
    }
    return acc;
}

/* out (+)= K x for contiguous (n,) vectors. */
void stencil_apply_v(
    long n, long nd, const long *offs, const double *cs,
    long nspecial, const long *srows, const double *svals, double *stash,
    const double *x, double *out, int accumulate)
{
    long lo = offs[0] < 0 ? -offs[0] : 0;
    long hi = offs[nd - 1] > 0 ? n - offs[nd - 1] : n;
    long i, k, t;
    if (hi < lo) hi = lo;
    /* Special rows first: they read out[] before the fused loop clobbers
       it, and land last so they overwrite the constant approximation. */
    for (t = 0; t < nspecial; ++t) {
        long r = srows[t];
        double acc = accumulate ? out[r] : 0.0;
        stash[t] = acc + special_row(r, n, nd, offs, svals, nspecial, t, x);
    }
    switch (nd) {
"""
        + vec_cases
        + """
        default:
            for (i = lo; i < hi; ++i) {
                double acc = accumulate ? out[i] : 0.0;
                for (k = 0; k < nd; ++k)
                    acc += cs[k] * x[i + offs[k]];
                out[i] = acc;
            }
    }
    for (t = 0; t < nspecial; ++t)
        out[srows[t]] = stash[t];
}

/* out (+)= K X for C-contiguous (n, nc) blocks: row i is nc contiguous
   doubles, each column an independent ascending-offset chain. */
void stencil_apply_b(
    long n, long nd, const long *offs, const double *cs,
    long nspecial, const long *srows, const double *svals, double *stash,
    long nc, const double *x, double *out, int accumulate)
{
    long lo = offs[0] < 0 ? -offs[0] : 0;
    long hi = offs[nd - 1] > 0 ? n - offs[nd - 1] : n;
    long i, k, c, t;
    if (hi < lo) hi = lo;
    for (t = 0; t < nspecial; ++t) {
        long r = srows[t];
        const double *xr = x + (size_t)r * nc;
        double *orow = out + (size_t)r * nc;
        double *st = stash + (size_t)t * nc;
        (void)xr;
        for (c = 0; c < nc; ++c) {
            double acc = accumulate ? orow[c] : 0.0;
            for (k = 0; k < nd; ++k) {
                long j = r + offs[k];
                if (j >= 0 && j < n)
                    acc += svals[(size_t)k * (size_t)nspecial + (size_t)t]
                         * x[(size_t)j * nc + c];
            }
            st[c] = acc;
        }
    }
    switch (nd) {
"""
        + blk_cases
        + """
        default:
            for (i = lo; i < hi; ++i) {
                const double *xr = x + (size_t)i * nc;
                double *orow = out + (size_t)i * nc;
                for (c = 0; c < nc; ++c) {
                    double acc = accumulate ? orow[c] : 0.0;
                    for (k = 0; k < nd; ++k)
                        acc += cs[k] * xr[(ptrdiff_t)offs[k] * nc + c];
                    orow[c] = acc;
                }
            }
    }
    for (t = 0; t < nspecial; ++t) {
        double *orow = out + (size_t)srows[t] * nc;
        const double *st = stash + (size_t)t * nc;
        for (c = 0; c < nc; ++c)
            orow[c] = st[c];
    }
}

/* ---- fused multicolor m-step SSOR sweep --------------------------------

   One entry point walks the whole color schedule in-kernel: per-color
   gather off the constant-offset diagonals, diagonal solve, Horner
   alpha*r accumulation, and the merged forward/backward Conrad-Wallach
   passes.  The per-row chain mirrors the numpy fallback exactly —
   entries accumulate in (target, offset) order, the solve subtracts in
   the same association ((a*r - y) - acc), and -ffp-contract=off keeps
   every mul -> add unfused — so the iterate is bitwise identical to the
   chunked-numpy path.

   Layout (built once by StencilOperator.sweep_plan):
     gp[nc+1]   row-range pointers into rows/diag, concatenated by color
     rows/diag  unknown index and diagonal value per scheduled row
     ep[nc+1]   entry-range pointers per color (lower or upper half)
     eoff       column offset per entry
     ecb[nc]    base of the color's (len, ne) row-major coefficient
                matrix inside ecoef
   Gather columns clip to [0, n-1]; the stored coefficient at a clipped
   row is exactly 0.0, so the clipped read contributes a signed zero at
   most. */

/* Row epilogue of the vector sweep: Horner solve + lower/upper-sum stash.
   One association only — ((alpha*r - y) - acc) — matching the numpy
   solve_into exactly. */
#define SSOR_TAIL_V \
    if (do_solve) { \
        double ar = alpha * r[row]; \
        double z = use_y ? ((ar - y[q]) - acc) : (ar - acc); \
        rt[row] = z / diag[q]; \
    } \
    if (store_y) y[q] = acc;

static void ssor_rows_v(
    long n, long qa, long qb, long g0, long ne,
    const long *rows, const double *diag, const long *offs, const double *cm,
    double alpha, const double *r, double *rt, double *y,
    int use_y, int do_solve, int store_y, int clip)
{
    long q, e;
    if (clip) {
        for (q = qa; q < qb; ++q) {
            const long row = rows[q];
            const double *crow = cm + (size_t)(q - g0) * (size_t)ne;
            double acc = 0.0;
            for (e = 0; e < ne; ++e) {
                long col = row + offs[e];
                if (col < 0) col = 0; else if (col >= n) col = n - 1;
                acc += crow[e] * rt[col];
            }
            SSOR_TAIL_V
        }
        return;
    }
    switch (ne) {
"""
        + sweep_cases
        + """
        default:
            for (q = qa; q < qb; ++q) {
                const long row = rows[q];
                const double *crow = cm + (size_t)(q - g0) * (size_t)ne;
                double acc = 0.0;
                for (e = 0; e < ne; ++e)
                    acc += crow[e] * rt[row + offs[e]];
                SSOR_TAIL_V
            }
    }
}

static void ssor_color_v(
    long n, long c, const long *gp, const long *rows, const double *diag,
    const long *ep, const long *eoff, const long *ecb, const double *ecoef,
    double alpha, const double *r, double *rt, double *y,
    int use_y, int do_solve, int store_y)
{
    const long ne = ep[c + 1] - ep[c];
    const long *offs = eoff + ep[c];
    const double *cm = ecoef + ecb[c];
    const long qa = gp[c], qb = gp[c + 1];
    long minoff = 0, maxoff = 0, q_lo, q_hi, e;
    for (e = 0; e < ne; ++e) {
        if (offs[e] < minoff) minoff = offs[e];
        if (offs[e] > maxoff) maxoff = offs[e];
    }
    /* rows are sorted ascending, so clipping only bites on a prefix
       (col < 0) and a suffix (col >= n); the interior runs branch-free.
       Clipped entries carry coefficient exactly 0.0, so the split does
       not change any sum. */
    q_lo = qa;
    while (q_lo < qb && rows[q_lo] + minoff < 0) ++q_lo;
    q_hi = qb;
    while (q_hi > q_lo && rows[q_hi - 1] + maxoff >= n) --q_hi;
    ssor_rows_v(n, qa, q_lo, qa, ne, rows, diag, offs, cm,
                alpha, r, rt, y, use_y, do_solve, store_y, 1);
    ssor_rows_v(n, q_lo, q_hi, qa, ne, rows, diag, offs, cm,
                alpha, r, rt, y, use_y, do_solve, store_y, 0);
    ssor_rows_v(n, q_hi, qb, qa, ne, rows, diag, offs, cm,
                alpha, r, rt, y, use_y, do_solve, store_y, 1);
}

void stencil_ssor_v(
    long n, long m, long nc,
    const long *gp, const long *rows, const double *diag,
    const long *lp, const long *loff, const long *lcb, const double *lcoef,
    const long *up, const long *uoff, const long *ucb, const double *ucoef,
    const double *alphas, const double *r, double *rt, double *y)
{
    long s, c, q;
    for (s = 1; s <= m; ++s) {
        const double alpha = alphas[m - s];
        const int first = (s == 1);
        for (c = 0; c < nc; ++c)       /* forward: lower-triangular sums */
            ssor_color_v(n, c, gp, rows, diag, lp, loff, lcb, lcoef,
                         alpha, r, rt, y, !first, 1, 1);
        for (c = nc - 2; c >= 1; --c)  /* backward: upper-triangular sums */
            ssor_color_v(n, c, gp, rows, diag, up, uoff, ucb, ucoef,
                         alpha, r, rt, y, 1, 1, 1);
        if (nc >= 2) {
            for (q = gp[nc - 1]; q < gp[nc]; ++q)
                y[q] = 0.0;            /* last color has no upper coupling */
            if (s == m)                /* closing color-0 solve */
                ssor_color_v(n, 0, gp, rows, diag, up, uoff, ucb, ucoef,
                             alpha, r, rt, y, 0, 1, 0);
            else                       /* stash color-0 upper sum only */
                ssor_color_v(n, 0, gp, rows, diag, up, uoff, ucb, ucoef,
                             alpha, r, rt, y, 0, 0, 1);
        }
    }
}

/* Block form over C-contiguous (n, k): element (i, j) at i*k + j.  Each
   column runs the exact scalar chain of stencil_ssor_v. */
static void ssor_rows_b_any(
    long n, long k, long qa, long qb, long g0, long ne,
    const long *rows, const double *diag, const long *offs, const double *cm,
    double alpha, const double *r, double *rt, double *y, double *acc,
    int use_y, int do_solve, int store_y, int clip)
{
    long q, e, j;
    for (q = qa; q < qb; ++q) {
        const long row = rows[q];
        const double *crow = cm + (size_t)(q - g0) * (size_t)ne;
        double *yq = y + (size_t)q * k;
        for (j = 0; j < k; ++j)
            acc[j] = 0.0;
        for (e = 0; e < ne; ++e) {
            long col = row + offs[e];
            const double cf = crow[e];
            const double *rc;
            if (clip) {
                if (col < 0) col = 0; else if (col >= n) col = n - 1;
            }
            rc = rt + (size_t)col * k;
            for (j = 0; j < k; ++j)
                acc[j] += cf * rc[j];
        }
        if (do_solve) {
            const double *rr = r + (size_t)row * k;
            double *rtr = rt + (size_t)row * k;
            const double d = diag[q];
            for (j = 0; j < k; ++j) {
                double ar = alpha * rr[j];
                double z = use_y ? ((ar - yq[j]) - acc[j]) : (ar - acc[j]);
                rtr[j] = z / d;
            }
        }
        if (store_y)
            for (j = 0; j < k; ++j)
                yq[j] = acc[j];
    }
}
"""
        + block_rows
        + """
/* Column-loop trip counts are compile-time for the common widths: the
   generated ssor_rows_b_k<K> bodies unroll to straight-line SIMD, which
   is what lets the k=4 block sweep keep pace with the merged CSR sweep.
   Same arithmetic per column either way — dispatch is bitwise-neutral. */
static void ssor_rows_b(
    long n, long k, long qa, long qb, long g0, long ne,
    const long *rows, const double *diag, const long *offs, const double *cm,
    double alpha, const double *r, double *rt, double *y, double *acc,
    int use_y, int do_solve, int store_y, int clip)
{
    switch (k) {
"""
        + block_dispatch
        + """
    }
    ssor_rows_b_any(n, k, qa, qb, g0, ne, rows, diag, offs, cm,
                    alpha, r, rt, y, acc, use_y, do_solve, store_y, clip);
}

static void ssor_color_b(
    long n, long k, long c,
    const long *gp, const long *rows, const double *diag,
    const long *ep, const long *eoff, const long *ecb, const double *ecoef,
    double alpha, const double *r, double *rt, double *y, double *acc,
    int use_y, int do_solve, int store_y)
{
    const long ne = ep[c + 1] - ep[c];
    const long *offs = eoff + ep[c];
    const double *cm = ecoef + ecb[c];
    const long qa = gp[c], qb = gp[c + 1];
    long minoff = 0, maxoff = 0, q_lo, q_hi, e;
    for (e = 0; e < ne; ++e) {
        if (offs[e] < minoff) minoff = offs[e];
        if (offs[e] > maxoff) maxoff = offs[e];
    }
    q_lo = qa;
    while (q_lo < qb && rows[q_lo] + minoff < 0) ++q_lo;
    q_hi = qb;
    while (q_hi > q_lo && rows[q_hi - 1] + maxoff >= n) --q_hi;
    ssor_rows_b(n, k, qa, q_lo, qa, ne, rows, diag, offs, cm,
                alpha, r, rt, y, acc, use_y, do_solve, store_y, 1);
    ssor_rows_b(n, k, q_lo, q_hi, qa, ne, rows, diag, offs, cm,
                alpha, r, rt, y, acc, use_y, do_solve, store_y, 0);
    ssor_rows_b(n, k, q_hi, qb, qa, ne, rows, diag, offs, cm,
                alpha, r, rt, y, acc, use_y, do_solve, store_y, 1);
}

void stencil_ssor_b(
    long n, long k, long m, long nc,
    const long *gp, const long *rows, const double *diag,
    const long *lp, const long *loff, const long *lcb, const double *lcoef,
    const long *up, const long *uoff, const long *ucb, const double *ucoef,
    const double *alphas, const double *r, double *rt, double *y,
    double *acc)
{
    long s, c, q;
    for (s = 1; s <= m; ++s) {
        const double alpha = alphas[m - s];
        const int first = (s == 1);
        for (c = 0; c < nc; ++c)
            ssor_color_b(n, k, c, gp, rows, diag, lp, loff, lcb, lcoef,
                         alpha, r, rt, y, acc, !first, 1, 1);
        for (c = nc - 2; c >= 1; --c)
            ssor_color_b(n, k, c, gp, rows, diag, up, uoff, ucb, ucoef,
                         alpha, r, rt, y, acc, 1, 1, 1);
        if (nc >= 2) {
            for (q = gp[nc - 1] * k; q < gp[nc] * k; ++q)
                y[q] = 0.0;
            if (s == m)
                ssor_color_b(n, k, 0, gp, rows, diag, up, uoff, ucb, ucoef,
                             alpha, r, rt, y, acc, 0, 1, 0);
            else
                ssor_color_b(n, k, 0, gp, rows, diag, up, uoff, ucb, ucoef,
                             alpha, r, rt, y, acc, 0, 0, 1);
        }
    }
}
"""
    )


_FLAG_SETS = (
    # -march=native buys SIMD width; -ffp-contract=off keeps the mul→add
    # chain un-fused in both, so the rounding matches numpy/scipy exactly.
    ("-O3", "-march=native", "-ffp-contract=off", "-fPIC", "-shared"),
    ("-O3", "-ffp-contract=off", "-fPIC", "-shared"),
    ("-O2", "-fPIC", "-shared"),
)

_I64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_F64 = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")


class NativeStencil:
    """ctypes facade over the compiled fused-apply kernels."""

    def __init__(self, lib: ctypes.CDLL):
        self._lib = lib
        lib.stencil_apply_v.restype = None
        lib.stencil_apply_v.argtypes = [
            ctypes.c_long, ctypes.c_long, _I64, _F64,
            ctypes.c_long, _I64, _F64, _F64,
            _F64, _F64, ctypes.c_int,
        ]
        lib.stencil_apply_b.restype = None
        lib.stencil_apply_b.argtypes = [
            ctypes.c_long, ctypes.c_long, _I64, _F64,
            ctypes.c_long, _I64, _F64, _F64,
            ctypes.c_long, _F64, _F64, ctypes.c_int,
        ]
        _plan = [_I64, _I64, _F64, _I64, _I64, _I64, _F64,
                 _I64, _I64, _I64, _F64]
        lib.stencil_ssor_v.restype = None
        lib.stencil_ssor_v.argtypes = [
            ctypes.c_long, ctypes.c_long, ctypes.c_long,
            *_plan, _F64, _F64, _F64, _F64,
        ]
        lib.stencil_ssor_b.restype = None
        lib.stencil_ssor_b.argtypes = [
            ctypes.c_long, ctypes.c_long, ctypes.c_long, ctypes.c_long,
            *_plan, _F64, _F64, _F64, _F64, _F64,
        ]

    def apply_vector(self, n, offs, cs, srows, svals, stash, x, out, accumulate):
        self._lib.stencil_apply_v(
            n, len(offs), offs, cs, len(srows), srows, svals, stash,
            x, out, 1 if accumulate else 0,
        )

    def apply_block(self, n, offs, cs, srows, svals, stash, x, out, accumulate):
        self._lib.stencil_apply_b(
            n, len(offs), offs, cs, len(srows), srows, svals, stash,
            x.shape[1], x, out, 1 if accumulate else 0,
        )

    def ssor_vector(self, n, m, nc, tables, alphas, r, rt, y):
        self._lib.stencil_ssor_v(n, m, nc, *tables, alphas, r, rt, y)

    def ssor_block(self, n, k, m, nc, tables, alphas, r, rt, y, acc):
        self._lib.stencil_ssor_b(n, k, m, nc, *tables, alphas, r, rt, y, acc)


_CACHE: list = []  # [NativeStencil | None] once resolved


def _build_dir() -> Path:
    return Path(__file__).resolve().parent / "_build"


def _compile(src_text: str, out_path: Path) -> bool:
    build = out_path.parent
    build.mkdir(parents=True, exist_ok=True)
    with tempfile.NamedTemporaryFile(
        "w", suffix=".c", dir=build, delete=False
    ) as fh:
        fh.write(src_text)
        c_path = Path(fh.name)
    try:
        for flags in _FLAG_SETS:
            tmp_so = c_path.with_suffix(".so")
            cmd = ["cc", *flags, str(c_path), "-o", str(tmp_so)]
            try:
                proc = subprocess.run(
                    cmd, capture_output=True, text=True, timeout=120
                )
            except (OSError, subprocess.TimeoutExpired):
                return False
            if proc.returncode == 0:
                os.replace(tmp_so, out_path)  # atomic vs concurrent builders
                return True
        return False
    finally:
        c_path.unlink(missing_ok=True)
        c_path.with_suffix(".so").unlink(missing_ok=True)


def load_native() -> NativeStencil | None:
    """The compiled kernel pack, or ``None`` when it cannot be had.

    The first call per interpreter compiles (or finds the content-hashed
    cached ``.so``); every later call is a list lookup.  Set
    ``REPRO_NO_NATIVE`` to force the numpy fallback everywhere.
    """
    if _CACHE:
        return _CACHE[0]
    native = None
    if not os.environ.get("REPRO_NO_NATIVE"):
        try:
            text = _source()
            digest = hashlib.sha256(text.encode()).hexdigest()[:16]
            so_path = _build_dir() / f"stencil-{digest}.so"
            if so_path.exists() or _compile(text, so_path):
                native = NativeStencil(ctypes.CDLL(str(so_path)))
        except OSError:
            native = None
    _CACHE.append(native)
    return native
