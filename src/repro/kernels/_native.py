"""Optional compiled kernel behind :class:`~repro.kernels.stencil.StencilOperator`.

The pure-numpy stencil product pays one multiply pass and one add pass
per diagonal; at solver sizes the arrays are cache-resident, so those
extra sweeps — not DRAM — are the bottleneck.  The C kernel here fuses
the whole product into a single pass per row::

    out[i] = (out[i] +) c₀·x[i+o₀] + c₁·x[i+o₁] + … + c_d·x[i+o_d]

using the *dominant constant* of each diagonal (a regular-mesh diagonal
is one number almost everywhere), then overwrites the handful of
"special" rows — boundary margins plus the rows where any diagonal
deviates from its constant — with the exact per-row sum.  Per output
element the terms still accumulate in ascending-offset order, i.e.
ascending column order per row, so the result is **bitwise identical**
to both the numpy shifted-slice path and scipy's ``csr_matvec``.

Compilation happens lazily, once per interpreter, with ``cc`` into a
content-hashed shared library under ``_build/`` next to this module; the
flags deliberately include ``-ffp-contract=off`` so no fused
multiply-add can change the rounding of the ``mul → add`` chain.  When
no compiler is available (or ``REPRO_NO_NATIVE`` is set) the loader
returns ``None`` and the operator silently keeps its numpy path — the
kernel is an accelerator, never a dependency.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["load_native"]

#: Generated cases of the fixed-diagonal-count fused loop.  Constant trip
#: counts let the compiler unroll the diagonal chain and vectorize the
#: row loop; diagonal counts outside the set fall back to the runtime
#: loop (still one pass, just scalar).  5 covers the scalar 5-point
#: stencils, 18 the interleaved two-dof plate stencil.
_SPECIALIZED = (3, 5, 9, 18)

_CASE_TEMPLATE = """
        case {nd}:
            for (i = lo; i < hi; ++i) {{
                double acc = accumulate ? out[i] : 0.0;
                for (k = 0; k < {nd}; ++k)
                    acc += cs[k] * x[i + offs[k]];
                out[i] = acc;
            }}
            break;
"""

_BLOCK_CASE_TEMPLATE = """
        case {nd}:
            for (i = lo; i < hi; ++i) {{
                const double *xr = x + (size_t)i * nc;
                double *orow = out + (size_t)i * nc;
                for (c = 0; c < nc; ++c) {{
                    double acc = accumulate ? orow[c] : 0.0;
                    for (k = 0; k < {nd}; ++k)
                        acc += cs[k] * xr[(ptrdiff_t)offs[k] * nc + c];
                    orow[c] = acc;
                }}
            }}
            break;
"""


def _source() -> str:
    vec_cases = "".join(_CASE_TEMPLATE.format(nd=nd) for nd in _SPECIALIZED)
    blk_cases = "".join(_BLOCK_CASE_TEMPLATE.format(nd=nd) for nd in _SPECIALIZED)
    return (
        """
#include <stddef.h>

/* Exact sum of one special row: true per-diagonal values, window-checked.
   Ascending k is ascending column order — the csr_matvec association. */
static double special_row(
    long i, long n, long nd, const long *offs,
    const double *svals, long nspecial, long t, const double *x)
{
    double acc = 0.0;
    long k;
    for (k = 0; k < nd; ++k) {
        long j = i + offs[k];
        if (j >= 0 && j < n)
            acc += svals[(size_t)k * (size_t)nspecial + (size_t)t] * x[j];
    }
    return acc;
}

/* out (+)= K x for contiguous (n,) vectors. */
void stencil_apply_v(
    long n, long nd, const long *offs, const double *cs,
    long nspecial, const long *srows, const double *svals, double *stash,
    const double *x, double *out, int accumulate)
{
    long lo = offs[0] < 0 ? -offs[0] : 0;
    long hi = offs[nd - 1] > 0 ? n - offs[nd - 1] : n;
    long i, k, t;
    if (hi < lo) hi = lo;
    /* Special rows first: they read out[] before the fused loop clobbers
       it, and land last so they overwrite the constant approximation. */
    for (t = 0; t < nspecial; ++t) {
        long r = srows[t];
        double acc = accumulate ? out[r] : 0.0;
        stash[t] = acc + special_row(r, n, nd, offs, svals, nspecial, t, x);
    }
    switch (nd) {
"""
        + vec_cases
        + """
        default:
            for (i = lo; i < hi; ++i) {
                double acc = accumulate ? out[i] : 0.0;
                for (k = 0; k < nd; ++k)
                    acc += cs[k] * x[i + offs[k]];
                out[i] = acc;
            }
    }
    for (t = 0; t < nspecial; ++t)
        out[srows[t]] = stash[t];
}

/* out (+)= K X for C-contiguous (n, nc) blocks: row i is nc contiguous
   doubles, each column an independent ascending-offset chain. */
void stencil_apply_b(
    long n, long nd, const long *offs, const double *cs,
    long nspecial, const long *srows, const double *svals, double *stash,
    long nc, const double *x, double *out, int accumulate)
{
    long lo = offs[0] < 0 ? -offs[0] : 0;
    long hi = offs[nd - 1] > 0 ? n - offs[nd - 1] : n;
    long i, k, c, t;
    if (hi < lo) hi = lo;
    for (t = 0; t < nspecial; ++t) {
        long r = srows[t];
        const double *xr = x + (size_t)r * nc;
        double *orow = out + (size_t)r * nc;
        double *st = stash + (size_t)t * nc;
        (void)xr;
        for (c = 0; c < nc; ++c) {
            double acc = accumulate ? orow[c] : 0.0;
            for (k = 0; k < nd; ++k) {
                long j = r + offs[k];
                if (j >= 0 && j < n)
                    acc += svals[(size_t)k * (size_t)nspecial + (size_t)t]
                         * x[(size_t)j * nc + c];
            }
            st[c] = acc;
        }
    }
    switch (nd) {
"""
        + blk_cases
        + """
        default:
            for (i = lo; i < hi; ++i) {
                const double *xr = x + (size_t)i * nc;
                double *orow = out + (size_t)i * nc;
                for (c = 0; c < nc; ++c) {
                    double acc = accumulate ? orow[c] : 0.0;
                    for (k = 0; k < nd; ++k)
                        acc += cs[k] * xr[(ptrdiff_t)offs[k] * nc + c];
                    orow[c] = acc;
                }
            }
    }
    for (t = 0; t < nspecial; ++t) {
        double *orow = out + (size_t)srows[t] * nc;
        const double *st = stash + (size_t)t * nc;
        for (c = 0; c < nc; ++c)
            orow[c] = st[c];
    }
}
"""
    )


_FLAG_SETS = (
    # -march=native buys SIMD width; -ffp-contract=off keeps the mul→add
    # chain un-fused in both, so the rounding matches numpy/scipy exactly.
    ("-O3", "-march=native", "-ffp-contract=off", "-fPIC", "-shared"),
    ("-O3", "-ffp-contract=off", "-fPIC", "-shared"),
    ("-O2", "-fPIC", "-shared"),
)

_I64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_F64 = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")


class NativeStencil:
    """ctypes facade over the compiled fused-apply kernels."""

    def __init__(self, lib: ctypes.CDLL):
        self._lib = lib
        lib.stencil_apply_v.restype = None
        lib.stencil_apply_v.argtypes = [
            ctypes.c_long, ctypes.c_long, _I64, _F64,
            ctypes.c_long, _I64, _F64, _F64,
            _F64, _F64, ctypes.c_int,
        ]
        lib.stencil_apply_b.restype = None
        lib.stencil_apply_b.argtypes = [
            ctypes.c_long, ctypes.c_long, _I64, _F64,
            ctypes.c_long, _I64, _F64, _F64,
            ctypes.c_long, _F64, _F64, ctypes.c_int,
        ]

    def apply_vector(self, n, offs, cs, srows, svals, stash, x, out, accumulate):
        self._lib.stencil_apply_v(
            n, len(offs), offs, cs, len(srows), srows, svals, stash,
            x, out, 1 if accumulate else 0,
        )

    def apply_block(self, n, offs, cs, srows, svals, stash, x, out, accumulate):
        self._lib.stencil_apply_b(
            n, len(offs), offs, cs, len(srows), srows, svals, stash,
            x.shape[1], x, out, 1 if accumulate else 0,
        )


_CACHE: list = []  # [NativeStencil | None] once resolved


def _build_dir() -> Path:
    return Path(__file__).resolve().parent / "_build"


def _compile(src_text: str, out_path: Path) -> bool:
    build = out_path.parent
    build.mkdir(parents=True, exist_ok=True)
    with tempfile.NamedTemporaryFile(
        "w", suffix=".c", dir=build, delete=False
    ) as fh:
        fh.write(src_text)
        c_path = Path(fh.name)
    try:
        for flags in _FLAG_SETS:
            tmp_so = c_path.with_suffix(".so")
            cmd = ["cc", *flags, str(c_path), "-o", str(tmp_so)]
            try:
                proc = subprocess.run(
                    cmd, capture_output=True, text=True, timeout=120
                )
            except (OSError, subprocess.TimeoutExpired):
                return False
            if proc.returncode == 0:
                os.replace(tmp_so, out_path)  # atomic vs concurrent builders
                return True
        return False
    finally:
        c_path.unlink(missing_ok=True)
        c_path.with_suffix(".so").unlink(missing_ok=True)


def load_native() -> NativeStencil | None:
    """The compiled kernel pack, or ``None`` when it cannot be had.

    The first call per interpreter compiles (or finds the content-hashed
    cached ``.so``); every later call is a list lookup.  Set
    ``REPRO_NO_NATIVE`` to force the numpy fallback everywhere.
    """
    if _CACHE:
        return _CACHE[0]
    native = None
    if not os.environ.get("REPRO_NO_NATIVE"):
        try:
            text = _source()
            digest = hashlib.sha256(text.encode()).hexdigest()[:16]
            so_path = _build_dir() / f"stencil-{digest}.so"
            if so_path.exists() or _compile(text, so_path):
                native = NativeStencil(ctypes.CDLL(str(so_path)))
        except OSError:
            native = None
    _CACHE.append(native)
    return native
