"""Kernel-backend selection.

Every hot primitive in the solver stack dispatches through a *backend*:

* ``"vectorized"`` (default) — the cached color-block sweeps, factorized
  triangular solves and fused in-place updates of :mod:`repro.kernels`;
  this is the numpy realization of the paper's claim that under a
  multicolor ordering the SSOR solves are a handful of dense vector
  operations.
* ``"reference"`` — the paper-faithful formulation (row-sequential
  ``spsolve_triangular``, out-of-place updates).  Slow, transparent, and
  the pin for the equivalence test-suite: every fast path must agree with
  it to roundoff.

The default is process-global; override it per object (every consumer
takes a ``backend=`` argument) or temporarily with :func:`use_backend`.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = [
    "VECTORIZED",
    "REFERENCE",
    "BACKENDS",
    "default_backend",
    "set_default_backend",
    "resolve_backend",
    "use_backend",
]

VECTORIZED = "vectorized"
REFERENCE = "reference"
BACKENDS = (VECTORIZED, REFERENCE)

_default = VECTORIZED


def default_backend() -> str:
    """The process-wide default backend name."""
    return _default


def set_default_backend(name: str) -> None:
    """Set the process-wide default backend (``"vectorized"``/``"reference"``)."""
    global _default
    _default = resolve_backend(name)


def resolve_backend(name: str | None) -> str:
    """Validate ``name``; ``None`` means the current default."""
    if name is None:
        return _default
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {BACKENDS}"
        )
    return name


@contextmanager
def use_backend(name: str):
    """Temporarily switch the default backend (tests, A/B timing)."""
    global _default
    previous = _default
    _default = resolve_backend(name)
    try:
        yield _default
    finally:
        _default = previous
