"""Kernel-backend selection.

Every hot primitive in the solver stack dispatches through a *backend*:

* ``"vectorized"`` (default) — the cached color-block sweeps, factorized
  triangular solves and fused in-place updates of :mod:`repro.kernels`;
  this is the numpy realization of the paper's claim that under a
  multicolor ordering the SSOR solves are a handful of dense vector
  operations.
* ``"reference"`` — the paper-faithful formulation (row-sequential
  ``spsolve_triangular``, out-of-place updates).  Slow, transparent, and
  the pin for the equivalence test-suite: every fast path must agree with
  it to roundoff.

The default is process-global; override it per object (every consumer
takes a ``backend=`` argument) or temporarily with :func:`use_backend`.

Solver plans additionally accept ``"stencil"`` — the matrix-free
:class:`~repro.kernels.stencil.StencilOperator` path for the regular-mesh
scenarios, which never assembles CSR at all.  It is a *solver* backend,
not a kernel backend: the CSR kernel primitives have no stencil variant,
so :data:`BACKENDS`/:func:`resolve_backend` (used by the triangular-solve
and machine layers) exclude it while :data:`SOLVER_BACKENDS`/
:func:`resolve_solver_backend` (used by plans, the CLI and the serving
protocol) include it.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = [
    "VECTORIZED",
    "REFERENCE",
    "STENCIL",
    "BACKENDS",
    "SOLVER_BACKENDS",
    "default_backend",
    "set_default_backend",
    "resolve_backend",
    "resolve_solver_backend",
    "use_backend",
]

VECTORIZED = "vectorized"
REFERENCE = "reference"
STENCIL = "stencil"
BACKENDS = (VECTORIZED, REFERENCE)
SOLVER_BACKENDS = (VECTORIZED, REFERENCE, STENCIL)

_default = VECTORIZED


def default_backend() -> str:
    """The process-wide default backend name."""
    return _default


def set_default_backend(name: str) -> None:
    """Set the process-wide default backend (``"vectorized"``/``"reference"``)."""
    global _default
    _default = resolve_backend(name)


def resolve_backend(name: str | None) -> str:
    """Validate ``name``; ``None`` means the current default."""
    if name is None:
        return _default
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; valid choices: "
            + ", ".join(repr(b) for b in BACKENDS)
        )
    return name


def resolve_solver_backend(name: str | None) -> str:
    """Validate a *solver* backend name (kernel backends + ``"stencil"``).

    ``None`` means the current kernel default.  The error message lists
    the valid choices — plans, the CLI and the serving protocol all route
    their validation through here.
    """
    if name is None:
        return _default
    if name not in SOLVER_BACKENDS:
        raise ValueError(
            f"unknown solver backend {name!r}; valid choices: "
            + ", ".join(repr(b) for b in SOLVER_BACKENDS)
        )
    return name


@contextmanager
def use_backend(name: str):
    """Temporarily switch the default backend (tests, A/B timing)."""
    global _default
    previous = _default
    _default = resolve_backend(name)
    try:
        yield _default
    finally:
        _default = previous
