"""The preconditioned conjugate gradient driver (Algorithm 1).

This is the paper's Algorithm 1 verbatim (after Chandra 1978):

```
choose u⁰;  r⁰ = f − K u⁰;  solve M r̃⁰ = r⁰;  p⁰ = r̃⁰
for k = 0, 1, …:
    (1) α = (r̃ᵏ, rᵏ) / (pᵏ, K pᵏ)
    (2) u^{k+1} = uᵏ + α pᵏ
    (3) if ‖u^{k+1} − uᵏ‖_∞ < ε: stop
    (4) r^{k+1} = rᵏ − α K pᵏ
    (5) solve M r̃^{k+1} = r^{k+1}
    (6) β = (r̃^{k+1}, r^{k+1}) / (r̃ᵏ, rᵏ)
    (7) p^{k+1} = r̃^{k+1} + β pᵏ
```

Two global inner products per iteration — the quantity whose cost on vector
machines and processor arrays motivates the whole paper — plus one matrix
product and one preconditioner application.  ``M = I`` (no preconditioner)
gives standard conjugate gradients.

The driver is ordering- and storage-agnostic: ``k`` may be any object with
``@`` (scipy sparse, ndarray, LinearOperator) and the preconditioner any
object with ``apply(r) → r̃``.  The machine simulators re-implement this
same loop on their own kernels; tests pin their iterates to this reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.convergence import DeltaInfNorm, StoppingRule
from repro.core.mstep import IdentityPreconditioner
from repro.kernels import matvec_into, supports_matvec_into, xpay_into
from repro.util import OperationCounter, inf_norm, inner, require

__all__ = ["PCGResult", "pcg", "cg"]


@dataclass
class PCGResult:
    """Outcome of a PCG solve.

    Attributes
    ----------
    u:
        Final iterate (in the ordering of the inputs).
    iterations:
        Number of completed iterations (the paper's ``I``): the iteration
        at which the convergence test first passed.
    converged:
        Whether the stopping rule fired before ``maxiter``.
    delta_history:
        ``‖u^{k+1} − uᵏ‖_∞`` per iteration (drives the paper's test).
    residual_history:
        ``‖rᵏ‖₂`` per iteration if residual tracking was requested (costs an
        extra reduction per iteration on a real machine, hence optional).
    counter:
        Outer-loop operation counts; preconditioner-internal work is tallied
        on the preconditioner's own counter.
    """

    u: np.ndarray
    iterations: int
    converged: bool
    delta_history: list[float] = field(default_factory=list)
    residual_history: list[float] = field(default_factory=list)
    counter: OperationCounter = field(default_factory=OperationCounter)
    stop_rule: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = "converged" if self.converged else "NOT converged"
        return f"PCGResult({tag} in {self.iterations} iterations, {self.stop_rule})"


def pcg(
    k,
    f: np.ndarray,
    preconditioner=None,
    u0: np.ndarray | None = None,
    stopping: StoppingRule | None = None,
    eps: float = 1e-6,
    maxiter: int | None = None,
    track_residual: bool = False,
    callback=None,
) -> PCGResult:
    """Solve SPD ``K u = f`` by Algorithm 1.

    Parameters
    ----------
    k:
        The operator ``K`` (anything supporting ``k @ x``).
    f:
        Right-hand side.
    preconditioner:
        Object with ``apply(r) → M⁻¹r``; ``None`` means ``M = I`` (plain CG).
    u0:
        Starting guess (default zero).
    stopping:
        A :class:`StoppingRule`; default is the paper's
        ``‖Δu‖_∞ < eps``.
    eps:
        Tolerance for the default rule (ignored when ``stopping`` given).
    maxiter:
        Iteration cap; default ``5·n + 100``.
    track_residual:
        Also record ``‖rᵏ‖₂`` each iteration.
    callback:
        Optional ``callback(iteration, u, delta_norm)`` hook.
    """
    f = np.asarray(f, dtype=float)
    n = f.shape[0]
    require(k.shape == (n, n), "operator/right-hand-side shape mismatch")
    rule = stopping or DeltaInfNorm(eps=eps)
    m = preconditioner if preconditioner is not None else IdentityPreconditioner()
    maxiter = maxiter if maxiter is not None else 5 * n + 100
    counter = OperationCounter()

    # Snapshot the preconditioner's lifetime counter so only *this solve's*
    # work is merged into the result (preconditioners are reusable objects).
    precond_before = m.counter.as_dict() if hasattr(m, "counter") else None

    u = np.zeros(n) if u0 is None else np.array(u0, dtype=float)
    r = np.asarray(f - k @ u, dtype=float)
    counter.matvecs += 1
    rt = m.apply(r)
    p = np.array(rt, dtype=float)
    rho = inner(rt, r)
    counter.inner_products += 1
    f_norm = float(np.linalg.norm(f))

    # Steady-state workspaces: K·p and the α·p / α·Kp products are written
    # into preallocated buffers so the loop allocates nothing per iteration
    # (see repro.kernels.ops; the arithmetic is bit-identical to the
    # out-of-place spelling).
    kp = np.empty(n)
    step = np.empty(n)
    fast_matvec = supports_matvec_into(k, p, kp)

    delta_history: list[float] = []
    residual_history: list[float] = []
    if track_residual:
        residual_history.append(float(np.linalg.norm(r)))

    converged = False
    iterations = 0
    for iteration in range(1, maxiter + 1):
        if fast_matvec:
            matvec_into(k, p, kp)
        else:
            kp = np.asarray(k @ p, dtype=float)
        counter.matvecs += 1
        denom = inner(p, kp)
        counter.inner_products += 1
        if denom <= 0.0:
            # Exact convergence (p = 0) or loss of positive definiteness.
            iterations = iteration
            converged = rho == 0.0
            break
        alpha = rho / denom

        np.multiply(p, alpha, out=step)  # step = α·p
        u += step
        counter.axpys += 1
        delta_norm = inf_norm(step)
        delta_history.append(delta_norm)
        iterations = iteration
        if callback is not None:
            callback(iteration, u, delta_norm)

        if not rule.needs_residual and rule.converged(delta_norm, r, f_norm):
            converged = True
            break  # steps (4)–(7) skipped, as in Algorithm 1

        np.multiply(kp, alpha, out=step)  # step reused as scratch: α·Kp
        r -= step
        counter.axpys += 1
        if track_residual:
            residual_history.append(float(np.linalg.norm(r)))
        if rule.needs_residual and rule.converged(delta_norm, r, f_norm):
            converged = True
            break

        rt = m.apply(r)
        rho_new = inner(rt, r)
        counter.inner_products += 1
        beta = rho_new / rho
        rho = rho_new
        xpay_into(rt, beta, p)  # p = r̃ + β·p
        counter.axpys += 1

    if precond_before is not None:
        after = m.counter.as_dict()
        counter.precond_applications += (
            after["precond_applications"] - precond_before["precond_applications"]
        )
        counter.precond_steps += (
            after["precond_steps"] - precond_before["precond_steps"]
        )
        for key, value in after.items():
            if key in precond_before and key not in (
                "inner_products",
                "matvecs",
                "precond_applications",
                "precond_steps",
                "axpys",
            ):
                delta = value - precond_before[key]
                if delta:
                    counter.extra[key] = counter.extra.get(key, 0) + delta
            elif key not in precond_before:
                counter.extra[key] = counter.extra.get(key, 0) + value
    return PCGResult(
        u=u,
        iterations=iterations,
        converged=converged,
        delta_history=delta_history,
        residual_history=residual_history,
        counter=counter,
        stop_rule=rule.describe(),
    )


def cg(k, f, **kwargs) -> PCGResult:
    """Standard conjugate gradients — Algorithm 1 with ``M = I``."""
    kwargs.pop("preconditioner", None)
    return pcg(k, f, preconditioner=None, **kwargs)
