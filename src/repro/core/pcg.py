"""The preconditioned conjugate gradient driver (Algorithm 1).

This is the paper's Algorithm 1 verbatim (after Chandra 1978):

```
choose u⁰;  r⁰ = f − K u⁰;  solve M r̃⁰ = r⁰;  p⁰ = r̃⁰
for k = 0, 1, …:
    (1) α = (r̃ᵏ, rᵏ) / (pᵏ, K pᵏ)
    (2) u^{k+1} = uᵏ + α pᵏ
    (3) if ‖u^{k+1} − uᵏ‖_∞ < ε: stop
    (4) r^{k+1} = rᵏ − α K pᵏ
    (5) solve M r̃^{k+1} = r^{k+1}
    (6) β = (r̃^{k+1}, r^{k+1}) / (r̃ᵏ, rᵏ)
    (7) p^{k+1} = r̃^{k+1} + β pᵏ
```

Two global inner products per iteration — the quantity whose cost on vector
machines and processor arrays motivates the whole paper — plus one matrix
product and one preconditioner application.  ``M = I`` (no preconditioner)
gives standard conjugate gradients.

The driver is ordering- and storage-agnostic: ``k`` may be any object with
``@`` (scipy sparse, ndarray, LinearOperator) and the preconditioner any
object with ``apply(r) → r̃``.  The machine simulators re-implement this
same loop on their own kernels; tests pin their iterates to this reference.

:func:`block_pcg` is the multi-right-hand-side form: ``k`` independent
Algorithm-1 iterations advance in lockstep over an ``(n, k)`` block, the
matrix product and the preconditioner application batched through the
``(n, k)`` kernel paths while every per-column scalar (α, β, ρ, ‖Δu‖∞)
is tracked vectorwise.  Columns retire individually as they converge;
iterates, iteration counts and operation counters are *bitwise identical*
to ``k`` separate :func:`pcg` calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.convergence import DeltaInfNorm, StoppingRule
from repro.core.mstep import IdentityPreconditioner
from repro.kernels import (
    matvec_accumulate,
    matvec_into,
    supports_matvec_block,
    supports_matvec_into,
    xpay_into,
)
from repro.util import OperationCounter, inf_norm, inner, require

__all__ = ["PCGResult", "BlockPCGResult", "pcg", "cg", "block_pcg"]


@dataclass
class PCGResult:
    """Outcome of a PCG solve.

    Attributes
    ----------
    u:
        Final iterate (in the ordering of the inputs).
    iterations:
        Number of completed iterations (the paper's ``I``): the iteration
        at which the convergence test first passed.
    converged:
        Whether the stopping rule fired before ``maxiter``.
    delta_history:
        ``‖u^{k+1} − uᵏ‖_∞`` per iteration (drives the paper's test).
    residual_history:
        ``‖rᵏ‖₂`` per iteration if residual tracking was requested (costs an
        extra reduction per iteration on a real machine, hence optional).
    counter:
        Operation counts for this solve; see :func:`pcg` for the exact
        per-iteration charging contract.
    """

    u: np.ndarray
    iterations: int
    converged: bool
    delta_history: list[float] = field(default_factory=list)
    residual_history: list[float] = field(default_factory=list)
    counter: OperationCounter = field(default_factory=OperationCounter)
    stop_rule: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tag = "converged" if self.converged else "NOT converged"
        return f"PCGResult({tag} in {self.iterations} iterations, {self.stop_rule})"


def pcg(
    k,
    f: np.ndarray,
    preconditioner=None,
    u0: np.ndarray | None = None,
    stopping: StoppingRule | None = None,
    eps: float = 1e-6,
    maxiter: int | None = None,
    track_residual: bool = False,
    callback=None,
) -> PCGResult:
    """Solve SPD ``K u = f`` by Algorithm 1.

    **Counter contract.**  ``result.counter`` charges, per completed
    iteration: one ``matvecs`` (the single ``K p`` product), one or two
    ``inner_products`` (``(p, Kp)`` always; ``(r̃, r)`` only when steps
    4–7 run, i.e. not on the final converged iteration), and one to three
    ``axpys`` (the ``u``, ``r`` and ``p`` updates, the latter two skipped
    once the stopping rule fires).  Startup adds one ``matvecs``
    (``r⁰ = f − K u⁰``) and one ``inner_products`` (ρ₀).  Preconditioner
    work is tallied on the preconditioner's own lifetime counter; the
    slice belonging to *this solve* is merged into ``result.counter`` as
    ``precond_applications``/``precond_steps`` plus any
    preconditioner-specific ``extra`` keys (``p_solves``,
    ``block_multiplies``, …).  :func:`block_pcg` reproduces these counts
    column for column — the two are bitwise-reconcilable.

    Parameters
    ----------
    k:
        The operator ``K`` (anything supporting ``k @ x``).
    f:
        Right-hand side.
    preconditioner:
        Object with ``apply(r) → M⁻¹r``; ``None`` means ``M = I`` (plain CG).
    u0:
        Starting guess (default zero).
    stopping:
        A :class:`StoppingRule`; default is the paper's
        ``‖Δu‖_∞ < eps``.
    eps:
        Tolerance for the default rule (ignored when ``stopping`` given).
    maxiter:
        Iteration cap; default ``5·n + 100``.
    track_residual:
        Also record ``‖rᵏ‖₂`` each iteration.
    callback:
        Optional ``callback(iteration, u, delta_norm)`` hook.
    """
    f = np.asarray(f, dtype=float)
    n = f.shape[0]
    require(k.shape == (n, n), "operator/right-hand-side shape mismatch")
    rule = stopping or DeltaInfNorm(eps=eps)
    m = preconditioner if preconditioner is not None else IdentityPreconditioner()
    maxiter = maxiter if maxiter is not None else 5 * n + 100
    counter = OperationCounter()

    # Snapshot the preconditioner's lifetime counter so only *this solve's*
    # work is merged into the result (preconditioners are reusable objects).
    precond_before = m.counter.as_dict() if hasattr(m, "counter") else None

    u = np.zeros(n) if u0 is None else np.array(u0, dtype=float)
    r = np.asarray(f - k @ u, dtype=float)
    counter.matvecs += 1
    rt = m.apply(r)
    p = np.array(rt, dtype=float)
    rho = inner(rt, r)
    counter.inner_products += 1
    f_norm = float(np.linalg.norm(f))

    # Steady-state workspaces: K·p and the α·p / α·Kp products are written
    # into preallocated buffers so the loop allocates nothing per iteration
    # (see repro.kernels.ops; the arithmetic is bit-identical to the
    # out-of-place spelling).
    kp = np.empty(n)
    step = np.empty(n)
    fast_matvec = supports_matvec_into(k, p, kp)

    delta_history: list[float] = []
    residual_history: list[float] = []
    if track_residual:
        residual_history.append(float(np.linalg.norm(r)))

    converged = False
    iterations = 0
    for iteration in range(1, maxiter + 1):
        if fast_matvec:
            matvec_into(k, p, kp)
        else:
            kp = np.asarray(k @ p, dtype=float)
        counter.matvecs += 1
        denom = inner(p, kp)
        counter.inner_products += 1
        if denom <= 0.0:
            # Exact convergence (p = 0) or loss of positive definiteness.
            iterations = iteration
            converged = rho == 0.0
            break
        alpha = rho / denom

        np.multiply(p, alpha, out=step)  # step = α·p
        u += step
        counter.axpys += 1
        delta_norm = inf_norm(step)
        delta_history.append(delta_norm)
        iterations = iteration
        if callback is not None:
            callback(iteration, u, delta_norm)

        if not rule.needs_residual and rule.converged(delta_norm, r, f_norm):
            converged = True
            break  # steps (4)–(7) skipped, as in Algorithm 1

        np.multiply(kp, alpha, out=step)  # step reused as scratch: α·Kp
        r -= step
        counter.axpys += 1
        if track_residual:
            residual_history.append(float(np.linalg.norm(r)))
        if rule.needs_residual and rule.converged(delta_norm, r, f_norm):
            converged = True
            break

        rt = m.apply(r)
        rho_new = inner(rt, r)
        counter.inner_products += 1
        beta = rho_new / rho
        rho = rho_new
        xpay_into(rt, beta, p)  # p = r̃ + β·p
        counter.axpys += 1

    if precond_before is not None:
        after = m.counter.as_dict()
        counter.precond_applications += (
            after["precond_applications"] - precond_before["precond_applications"]
        )
        counter.precond_steps += (
            after["precond_steps"] - precond_before["precond_steps"]
        )
        for key, value in after.items():
            if key in precond_before and key not in (
                "inner_products",
                "matvecs",
                "precond_applications",
                "precond_steps",
                "axpys",
            ):
                delta = value - precond_before[key]
                if delta:
                    counter.extra[key] = counter.extra.get(key, 0) + delta
            elif key not in precond_before:
                counter.extra[key] = counter.extra.get(key, 0) + value
    return PCGResult(
        u=u,
        iterations=iterations,
        converged=converged,
        delta_history=delta_history,
        residual_history=residual_history,
        counter=counter,
        stop_rule=rule.describe(),
    )


def cg(k, f, **kwargs) -> PCGResult:
    """Standard conjugate gradients — Algorithm 1 with ``M = I``.

    The :class:`PCGResult` counter contract of :func:`pcg` applies
    unchanged (``M = I`` still charges one ``precond_applications`` per
    application — the copy is a real vector operation on the machines).
    For many right-hand sides at once see :func:`block_pcg`.
    """
    kwargs.pop("preconditioner", None)
    return pcg(k, f, preconditioner=None, **kwargs)


@dataclass
class BlockPCGResult:
    """Outcome of a :func:`block_pcg` solve over an ``(n, k)`` block.

    Per-column state mirrors :class:`PCGResult` exactly — ``column(j)``
    materializes the j-th column's record, bitwise identical (iterate,
    histories, counter) to the one an independent ``pcg(k, F[:, j])``
    would return.

    Attributes
    ----------
    u:
        Final iterates, one column per right-hand side (``(n, k)``).
    iterations:
        Per-column completed-iteration counts (``(k,)`` ints).
    converged:
        Per-column convergence flags (``(k,)`` bools).
    delta_histories / residual_histories:
        Per-column ``‖Δu‖∞`` (and optional ``‖r‖₂``) traces.
    counters:
        Per-column :class:`~repro.util.OperationCounter`\\ s, charged as if
        each column had been solved alone.
    """

    u: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    delta_histories: list[list[float]]
    residual_histories: list[list[float]]
    counters: list[OperationCounter]
    stop_rule: str = ""

    @property
    def k(self) -> int:
        """Number of right-hand-side columns in the block."""
        return int(self.u.shape[1])

    @property
    def all_converged(self) -> bool:
        """Whether every column's stopping rule fired before ``maxiter``."""
        return bool(np.all(self.converged))

    def column(self, j: int) -> PCGResult:
        """The j-th column's solve as a standalone :class:`PCGResult`."""
        return PCGResult(
            u=np.ascontiguousarray(self.u[:, j]),
            iterations=int(self.iterations[j]),
            converged=bool(self.converged[j]),
            delta_history=list(self.delta_histories[j]),
            residual_history=list(self.residual_histories[j]),
            counter=self.counters[j],
            stop_rule=self.stop_rule,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        done = int(np.count_nonzero(self.converged))
        return (
            f"BlockPCGResult({done}/{self.k} columns converged, "
            f"iterations {self.iterations.min()}–{self.iterations.max()})"
        )


def _merge_precond_delta(
    counters: list[OperationCounter], before: dict, after: dict, share: int
) -> None:
    """Split a preconditioner-counter delta evenly over ``share`` columns.

    Every batched application charges each column the identical structural
    amounts (the block kernels scale their counters by the column count),
    so the per-column slice is exactly ``delta / share`` — the same merge
    :func:`pcg` performs for a single column.
    """
    for key, value in after.items():
        delta = value - before.get(key, 0)
        if not delta:
            continue
        per_column = delta // share
        for counter in counters:
            if key == "precond_applications":
                counter.precond_applications += per_column
            elif key == "precond_steps":
                counter.precond_steps += per_column
            elif key not in ("inner_products", "matvecs", "axpys"):
                counter.extra[key] = counter.extra.get(key, 0) + per_column


def block_pcg(
    k,
    F: np.ndarray,
    preconditioner=None,
    u0: np.ndarray | None = None,
    stopping: StoppingRule | None = None,
    eps: float = 1e-6,
    maxiter: int | None = None,
    track_residual: bool = False,
    callback=None,
) -> BlockPCGResult:
    """Solve SPD ``K U = F`` for every column of an ``(n, k)`` block.

    All ``k`` Algorithm-1 iterations advance in lockstep: per outer
    iteration the still-active columns' direction vectors are stacked and
    multiplied by ``K`` in **one** batched product, and the preconditioner
    is applied to the whole active residual block in one ``(n, k)`` pass
    (the batched color-block sweeps of :mod:`repro.kernels`).  Per-column
    scalars — α, β, ρ, ``‖Δu‖∞`` — are tracked vectorwise, and a column
    whose stopping rule fires *retires*: its iterate freezes while the
    remaining columns keep iterating on a narrower block.

    Because every batched kernel is per-column bit-identical to its
    single-vector form (same accumulation order — see
    :func:`repro.kernels.ops.supports_matvec_block`), the iterates,
    iteration counts, histories and operation counters are **bitwise
    identical** to ``k`` independent :func:`pcg` runs; the test-suite pins
    this.  Operators or preconditioners without a block-safe path fall
    back to per-column application of the exact single-vector kernels —
    slower, still bitwise.

    Parameters mirror :func:`pcg`; differences:

    F:
        Right-hand-side block, shape ``(n, k)`` (any memory order — a
        contiguous working copy is taken per column).
    u0:
        Starting block (default zero), shape ``(n, k)`` or a single
        ``(n,)`` guess broadcast to every column.
    stopping:
        One rule instance shared by all columns (the stock rules are
        stateless); per-column decisions are made independently.
    callback:
        Optional ``callback(iteration, column, u, delta_norm)`` hook,
        invoked per active column per iteration.
    """
    F = np.asarray(F, dtype=float)
    require(F.ndim == 2, "block_pcg needs an (n, k) right-hand-side block")
    n, ncols = F.shape
    require(k.shape == (n, n), "operator/right-hand-side shape mismatch")
    rule = stopping or DeltaInfNorm(eps=eps)
    if ncols == 0:
        # An empty block is a legal no-op (the sharded path meets it when a
        # workload degenerates): zero columns solved, nothing touched.
        return BlockPCGResult(
            u=np.zeros((n, 0)),
            iterations=np.zeros(0, dtype=int),
            converged=np.zeros(0, dtype=bool),
            delta_histories=[],
            residual_histories=[],
            counters=[],
            stop_rule=rule.describe(),
        )
    m = preconditioner if preconditioner is not None else IdentityPreconditioner()
    maxiter = maxiter if maxiter is not None else 5 * n + 100

    block_matvec = supports_matvec_block(k)
    block_precond = bool(getattr(m, "block_capable", False))
    has_counter = hasattr(m, "counter")

    # Per-column state: contiguous (n,) vectors, exactly what pcg() holds.
    f_cols = [np.ascontiguousarray(F[:, j]) for j in range(ncols)]
    if u0 is None:
        u = [np.zeros(n) for _ in range(ncols)]
    else:
        u0 = np.asarray(u0, dtype=float)
        u = [
            np.array(u0 if u0.ndim == 1 else u0[:, j], dtype=float)
            for j in range(ncols)
        ]
    counters = [OperationCounter() for _ in range(ncols)]
    f_norms = [float(np.linalg.norm(f)) for f in f_cols]
    delta_histories: list[list[float]] = [[] for _ in range(ncols)]
    residual_histories: list[list[float]] = [[] for _ in range(ncols)]
    iterations = np.zeros(ncols, dtype=int)
    converged = np.zeros(ncols, dtype=bool)
    rho = np.zeros(ncols)

    # r⁰ = f − K u⁰ (one charged product per column, as in pcg; with the
    # zero start K u⁰ is exactly zero, so r⁰ = f bitwise).
    r: list[np.ndarray] = []
    kp_buf = np.empty(n)
    step = np.empty(n)
    for j in range(ncols):
        if u0 is None:
            r.append(f_cols[j].copy())
        else:
            if supports_matvec_into(k, u[j], kp_buf):
                matvec_into(k, u[j], kp_buf)
                r.append(f_cols[j] - kp_buf)
            else:
                r.append(np.asarray(f_cols[j] - k @ u[j], dtype=float))
        counters[j].matvecs += 1

    # Per-width scratch blocks, reused across iterations: the active set
    # only shrinks as columns retire, so a handful of widths ever appear
    # and the steady-state loop stacks into preallocated storage instead
    # of allocating two (n, active) blocks per iteration.
    stack_bufs: dict[int, np.ndarray] = {}
    kp_bufs: dict[int, np.ndarray] = {}

    def _stack_buf(bufs: dict[int, np.ndarray], width: int) -> np.ndarray:
        buf = bufs.get(width)
        if buf is None:
            buf = bufs.setdefault(width, np.empty((n, width)))
        return buf

    def apply_precond(cols: list[int]) -> list[np.ndarray]:
        """``M⁻¹`` on the active columns — one batched pass when possible."""
        before = m.counter.as_dict() if has_counter else None
        if len(cols) > 1 and block_precond:
            r_block = _stack_buf(stack_bufs, len(cols))
            np.stack([r[j] for j in cols], axis=1, out=r_block)
            rt_block = np.asarray(m.apply(r_block), dtype=float)
            out = [np.ascontiguousarray(rt_block[:, i]) for i in range(len(cols))]
        else:
            out = [np.array(m.apply(r[j]), dtype=float) for j in cols]
        if before is not None:
            _merge_precond_delta(
                [counters[j] for j in cols], before, m.counter.as_dict(),
                share=len(cols),
            )
        return out

    rt = apply_precond(list(range(ncols)))
    p = [np.array(x, dtype=float) for x in rt]
    for i, j in enumerate(range(ncols)):
        rho[j] = inner(rt[i], r[j])
        counters[j].inner_products += 1
        if track_residual:
            residual_histories[j].append(float(np.linalg.norm(r[j])))

    active = list(range(ncols))
    for iteration in range(1, maxiter + 1):
        if not active:
            break
        # ---- K p over the active block: one batched product -------------
        if len(active) > 1 and block_matvec:
            p_block = _stack_buf(stack_bufs, len(active))
            np.stack([p[j] for j in active], axis=1, out=p_block)
            kp_block = _stack_buf(kp_bufs, len(active))
            kp_block.fill(0.0)
            matvec_accumulate(k, p_block, kp_block)
            kp = [np.ascontiguousarray(kp_block[:, i]) for i in range(len(active))]
        else:
            kp = []
            for j in active:
                if supports_matvec_into(k, p[j], kp_buf):
                    matvec_into(k, p[j], kp_buf)
                    kp.append(kp_buf.copy())
                else:
                    kp.append(np.asarray(k @ p[j], dtype=float))
        survivors: list[int] = []
        for j, kpj in zip(active, kp):
            counters[j].matvecs += 1
            denom = inner(p[j], kpj)
            counters[j].inner_products += 1
            if denom <= 0.0:
                iterations[j] = iteration
                converged[j] = rho[j] == 0.0
                continue
            alpha = rho[j] / denom

            np.multiply(p[j], alpha, out=step)  # step = α·p
            u[j] += step
            counters[j].axpys += 1
            delta_norm = inf_norm(step)
            delta_histories[j].append(delta_norm)
            iterations[j] = iteration
            if callback is not None:
                callback(iteration, j, u[j], delta_norm)

            if not rule.needs_residual and rule.converged(
                delta_norm, r[j], f_norms[j]
            ):
                converged[j] = True
                continue  # column retires; steps (4)–(7) skipped

            np.multiply(kpj, alpha, out=step)  # scratch: α·Kp
            r[j] -= step
            counters[j].axpys += 1
            if track_residual:
                residual_histories[j].append(float(np.linalg.norm(r[j])))
            if rule.needs_residual and rule.converged(
                delta_norm, r[j], f_norms[j]
            ):
                converged[j] = True
                continue
            survivors.append(j)

        if survivors:
            rt = apply_precond(survivors)
            for i, j in enumerate(survivors):
                rho_new = inner(rt[i], r[j])
                counters[j].inner_products += 1
                beta = rho_new / rho[j]
                rho[j] = rho_new
                xpay_into(rt[i], beta, p[j])  # p = r̃ + β·p
                counters[j].axpys += 1
        active = survivors

    return BlockPCGResult(
        u=np.stack(u, axis=1),
        iterations=iterations,
        converged=converged,
        delta_histories=delta_histories,
        residual_histories=residual_histories,
        counters=counters,
        stop_rule=rule.describe(),
    )
