"""Stopping rules for the PCG iteration.

Algorithm 1 stops when ``‖u^{k+1} − u^k‖_∞ < ε`` — a test chosen because on
the Finite Element Machine it is implemented by the signal-flag network
(each processor raises a flag when *its* components have settled) rather
than by a global reduction.  :class:`DeltaInfNorm` is therefore the default
everywhere in this package; residual-based rules are provided for users who
prefer the textbook criterion.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.util import require

__all__ = ["StoppingRule", "DeltaInfNorm", "RelativeResidual", "AbsoluteResidual"]


class StoppingRule(abc.ABC):
    """Decides convergence once per iteration.

    ``needs_residual`` tells the driver whether the rule must see the
    *updated* residual (residual rules) or can act right after the solution
    update, before ``r`` is touched (the paper's rule — allowing steps 4–7
    of Algorithm 1 to be skipped on the final iteration).
    """

    needs_residual: bool = False

    @abc.abstractmethod
    def converged(self, delta_norm: float, r: np.ndarray, f_norm: float) -> bool:
        """True when the iteration may stop.

        Parameters
        ----------
        delta_norm:
            ``‖u^{k+1} − u^k‖_∞`` of the update just applied.
        r:
            Current residual (updated only if ``needs_residual``).
        f_norm:
            ``‖f‖₂`` cached by the driver for relative residual tests.
        """

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class DeltaInfNorm(StoppingRule):
    """The paper's test: ``‖u^{k+1} − u^k‖_∞ < ε`` (Algorithm 1, step 3)."""

    eps: float = 1e-6
    needs_residual = False

    def __post_init__(self) -> None:
        require(self.eps > 0, "ε must be positive")

    def converged(self, delta_norm: float, r: np.ndarray, f_norm: float) -> bool:
        return delta_norm < self.eps

    def describe(self) -> str:
        return f"‖Δu‖_∞ < {self.eps:g}"


@dataclass
class RelativeResidual(StoppingRule):
    """``‖r‖₂ ≤ tol · ‖f‖₂`` on the updated residual."""

    tol: float = 1e-8
    needs_residual = True

    def __post_init__(self) -> None:
        require(self.tol > 0, "tol must be positive")

    def converged(self, delta_norm: float, r: np.ndarray, f_norm: float) -> bool:
        return float(np.linalg.norm(r)) <= self.tol * max(f_norm, 1e-300)

    def describe(self) -> str:
        return f"‖r‖₂ ≤ {self.tol:g}·‖f‖₂"


@dataclass
class AbsoluteResidual(StoppingRule):
    """``‖r‖₂ ≤ tol`` on the updated residual."""

    tol: float = 1e-8
    needs_residual = True

    def __post_init__(self) -> None:
        require(self.tol > 0, "tol must be positive")

    def converged(self, delta_norm: float, r: np.ndarray, f_norm: float) -> bool:
        return float(np.linalg.norm(r)) <= self.tol

    def describe(self) -> str:
        return f"‖r‖₂ ≤ {self.tol:g}"
