"""Incomplete Cholesky IC(0) — the sequential-era baseline.

The PCG literature the paper builds on (Concus–Golub–O'Leary 1976, Chandra
1978) leans on incomplete-factorization preconditioners.  The paper's case
for m-step SSOR is *not* that it beats ICCG in iterations — it usually does
not — but that IC's two triangular solves are sequential recurrences that
neither vectorize on the CYBER nor distribute on the Finite Element
Machine, while the m-step multicolor sweep is all diagonal solves and
sparse block multiplies.  This module supplies that baseline so the bench
can show the crossover on the simulated machine.

``ichol0`` computes the zero-fill factorization ``K ≈ L Lᵀ`` with ``L``
sharing the lower-triangle pattern of ``K``.  Plane-stress stiffness
matrices are not M-matrices, so IC(0) can break down (a non-positive
pivot); the standard Manteuffel remedy is applied automatically — factor
``K + α·diag(K)`` with geometrically increasing shift α until the
factorization exists.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.kernels import make_triangular_solver
from repro.util import OperationCounter, require

__all__ = ["ichol0", "ICPreconditioner", "ICBreakdown"]


class ICBreakdown(RuntimeError):
    """IC(0) hit a non-positive pivot (matrix is not H/M-like enough)."""


def ichol0(k: sp.spmatrix, shift: float = 0.0) -> sp.csr_matrix:
    """Zero-fill incomplete Cholesky of ``K + shift·diag(K)``.

    Returns lower-triangular ``L`` with ``L Lᵀ ≈ K`` on the pattern of
    ``tril(K)``.  Raises :class:`ICBreakdown` on a non-positive pivot.
    """
    require(k.shape[0] == k.shape[1], "matrix must be square")
    n = k.shape[0]
    a = k.tocsr().copy()
    if shift:
        a = (a + shift * sp.diags(k.diagonal())).tocsr()

    lower = sp.tril(a, 0).tocsr()
    indptr, indices, data = lower.indptr, lower.indices, lower.data.copy()

    # Row-wise up-looking IC(0).  rows[i] maps column -> position in data,
    # giving O(1) pattern lookups.
    position: list[dict[int, int]] = [
        {int(indices[p]): p for p in range(indptr[i], indptr[i + 1])}
        for i in range(n)
    ]

    for i in range(n):
        start, stop = indptr[i], indptr[i + 1]
        # columns j < i in the pattern, ascending; diagonal last.
        for p in range(start, stop - 1):
            j = int(indices[p])
            # L[i,j] = (A[i,j] − Σ_{k<j} L[i,k]·L[j,k]) / L[j,j]
            s = data[p]
            row_i = position[i]
            for q in range(indptr[j], indptr[j + 1] - 1):
                kcol = int(indices[q])
                pik = row_i.get(kcol)
                if pik is not None:
                    s -= data[pik] * data[q]
            diag_j = data[indptr[j + 1] - 1]
            data[p] = s / diag_j
        # pivot: L[i,i] = sqrt(A[i,i] − Σ_{k<i} L[i,k]²)
        pivot = data[stop - 1]
        for p in range(start, stop - 1):
            pivot -= data[p] * data[p]
        if pivot <= 0.0:
            raise ICBreakdown(f"non-positive pivot {pivot:g} at row {i}")
        data[stop - 1] = np.sqrt(pivot)

    return sp.csr_matrix((data, indices.copy(), indptr.copy()), shape=(n, n))


class ICPreconditioner:
    """ICCG preconditioner: ``M⁻¹r = L⁻ᵀ L⁻¹ r``.

    Parameters
    ----------
    k:
        SPD matrix.
    initial_shift, shift_growth, max_attempts:
        Manteuffel shift schedule: try α = 0, then ``initial_shift``, then
        geometric growth, until IC(0) succeeds.
    backend:
        Kernel backend for the two triangular solves (see
        :mod:`repro.kernels`).  The vectorized backend caches the CSC
        factorizations of ``L`` and ``Lᵀ`` once — or, when ``K`` was
        multicolor-ordered (IC(0) inherits the color-block pattern of
        ``tril(K)``), uses the dense color-block sweep.
    """

    def __init__(
        self,
        k: sp.spmatrix,
        initial_shift: float = 1e-3,
        shift_growth: float = 4.0,
        max_attempts: int = 12,
        backend: str | None = None,
    ):
        shift = 0.0
        last_error: ICBreakdown | None = None
        for _ in range(max_attempts):
            try:
                self.l_factor = ichol0(k, shift=shift)
                self.shift = shift
                break
            except ICBreakdown as exc:
                last_error = exc
                shift = initial_shift if shift == 0.0 else shift * shift_growth
        else:  # pragma: no cover - pathological input
            raise ICBreakdown(
                f"IC(0) failed even with shift {shift:g}: {last_error}"
            )
        self.counter = OperationCounter()
        # Both solve kernels are cached once: the seed recomputed L.T.tocsr()
        # on *every* application, dominating the cost of small solves.
        self._lower_solver = make_triangular_solver(
            self.l_factor, lower=True, backend=backend
        )
        self._upper_solver = make_triangular_solver(
            self.l_factor.T.tocsr(), lower=False, backend=backend
        )

    @property
    def nnz(self) -> int:
        return int(self.l_factor.nnz)

    def apply(self, r: np.ndarray) -> np.ndarray:
        z = self._lower_solver.solve(np.asarray(r, dtype=float))
        out = self._upper_solver.solve(z)
        self.counter.precond_applications += 1
        self.counter.extra["triangular_solves"] = (
            self.counter.extra.get("triangular_solves", 0) + 2
        )
        return out

    def cyber_apply_seconds(self, timing) -> float:
        """Simulated CYBER cost of one application.

        Triangular solves are first-order recurrences: every result waits on
        the previous row, so the pipes stay idle and the scalar unit does
        one multiply-add per stored coefficient — ``2·nnz(L)`` scalar
        operations per application.  (Contrast the m-step sweep: all
        vector-length work.)
        """
        return timing.scalar_op_time(2 * self.nnz)
