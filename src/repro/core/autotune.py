"""Choosing m without running the sweep — the paper's model, operationalized.

Section 4 closes with: "The behavior of the m-step PCG Algorithm can be
modelled as a function of the number of processors, the problem size, and
the relative speed of arithmetic to communication times for the machine."
This module does exactly that: given the machine's per-iteration costs
``(A, B)`` of (4.1) and the measured spectrum interval of ``P⁻¹K``, it
predicts

```
T̂(m) ∝ (A + m·B) · √κ(M_m⁻¹K)
```

using the CG iteration bound ``N ∝ √κ`` with κ computed *exactly* from the
fitted polynomial on the interval, and recommends the minimizing m — no
trial solves needed.  The Table-2/Table-3 sweeps validate the prediction
against measured optima.

The block-RHS extension (PR 4): with ``width > 1`` the decision is priced
for a batch of ``width`` right-hand sides advancing in lockstep
(:func:`repro.core.pcg.block_pcg`).  The outer iteration's A is charged
per right-hand side while the preconditioner step amortizes
(:meth:`~repro.analysis.models.PerformanceModel.step_cost`), so wider
blocks move the inequality-(4.2) break-even toward *more* steps — the
machine-calibrated path
(:meth:`~repro.analysis.models.PerformanceModel.from_fem_machine`) feeds
``repro solve/table2 --m auto --rhs K``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.models import PerformanceModel, effective_optimal_m
from repro.core.polynomial import (
    fit_report,
    least_squares_coefficients,
    minmax_coefficients,
    neumann_coefficients,
)
from repro.util import require

__all__ = ["MRecommendation", "recommend_m", "predicted_cost_curve"]


@dataclass(frozen=True)
class MRecommendation:
    """Outcome of the model-based m selection."""

    m: int
    parametrized: bool
    criterion: str
    scores: dict[int, float]  # m → (A + mB)·√κ̂_m, m = 0 uses κ(interval-free) proxy
    kappas: dict[int, float]
    width: int = 1  # right-hand-side block width the decision was priced at

    @property
    def score(self) -> float:
        return self.scores[self.m]


def _coefficients(m: int, parametrized: bool, criterion: str, interval):
    if not parametrized:
        return neumann_coefficients(m)
    if criterion == "least_squares":
        return least_squares_coefficients(m, interval)
    if criterion == "minmax":
        return minmax_coefficients(m, interval)
    raise ValueError(f"unknown criterion {criterion!r}")


def predicted_cost_curve(
    interval: tuple[float, float],
    model: PerformanceModel,
    m_max: int = 10,
    parametrized: bool = True,
    criterion: str = "least_squares",
    width: int = 1,
    shards: int = 1,
) -> tuple[dict[int, float], dict[int, float]]:
    """``m → (A·w + m·step_cost(w))·√κ̂_m`` and ``m → κ̂_m`` for m = 1…m_max.

    κ̂_m is the interval bound of the fitted polynomial — exact when the
    spectrum fills the interval, conservative otherwise.  ``width`` prices
    the curve for a block of that many simultaneous right-hand sides
    (``width = 1`` is exactly the paper's (4.1)); on an amortizing model
    the preconditioner's share of each iteration shrinks as the block
    widens, flattening the curve's left edge and pushing the minimizer up.
    ``shards`` prices the block sharded over that many parallel workers
    (:func:`repro.parallel.sharded_block_pcg`): wall-clock follows the
    widest shard, so heavy sharding walks the curve back toward the
    paper's width-1 shape.
    """
    require(m_max >= 1, "m_max must be at least 1")
    require(width >= 1, "width must be at least 1")
    require(shards >= 1, "shards must be at least 1")
    scores: dict[int, float] = {}
    kappas: dict[int, float] = {}
    for m in range(1, m_max + 1):
        coeffs = _coefficients(m, parametrized, criterion, interval)
        report = fit_report(coeffs, interval)
        kappa = report.condition_bound
        kappas[m] = kappa
        scores[m] = model.predicted_time(
            m, float(np.sqrt(kappa)), width=width, shards=shards
        )
    return scores, kappas


def recommend_m(
    interval: tuple[float, float],
    model: PerformanceModel,
    m_max: int = 10,
    parametrized: bool = True,
    criterion: str = "least_squares",
    kappa_k: float | None = None,
    width: int = 1,
    shards: int = 1,
    rel_tol: float = 0.0,
) -> MRecommendation:
    """The m minimizing the predicted cost curve.

    ``rel_tol > 0`` picks the *smallest* m whose predicted cost lies
    within that relative tolerance of the minimum
    (:func:`~repro.analysis.models.effective_optimal_m`) instead of the
    raw argmin — the robust statistic for these curves, whose right edge
    is nearly flat exactly as the paper's measured Table-2 plateaus are
    (the CLI's ``--m auto`` uses 5%).

    Pass ``kappa_k = κ(K)`` (the *raw* operator's condition number — what
    plain CG sees) to include the m = 0 baseline in the comparison; without
    it only m ≥ 1 values compete.  Note κ(P⁻¹K)'s interval ratio is *not*
    a valid CG baseline: even one SSOR application already shrinks the
    condition number far below κ(K).

    ``width`` tunes m for a ``width``-wide right-hand-side block solved by
    :func:`repro.core.pcg.block_pcg`: pair a machine-calibrated model
    (:meth:`~repro.analysis.models.PerformanceModel.from_fem_machine`)
    with the block width actually planned
    (:attr:`~repro.pipeline.SolverPlan.block_rhs`) and the recommendation
    accounts for the amortized per-step cost — the ``--m auto --rhs K``
    path of the CLI.  ``shards`` additionally prices the block's sharded
    execution across that many worker processes (``--workers W``).
    """
    scores, kappas = predicted_cost_curve(
        interval, model, m_max, parametrized, criterion, width=width,
        shards=shards,
    )
    if kappa_k is not None:
        require(kappa_k >= 1.0, "κ(K) must be at least 1")
        kappas[0] = float(kappa_k)
        scores[0] = model.predicted_time(
            0, float(np.sqrt(kappa_k)), width=width, shards=shards
        )
    if rel_tol > 0:
        best = effective_optimal_m(scores, rel_tol=rel_tol)
    else:
        best = min(scores, key=scores.__getitem__)
    return MRecommendation(
        m=best,
        parametrized=parametrized,
        criterion=criterion,
        scores=scores,
        kappas=kappas,
        width=width,
    )
