"""Parametrization of the m-step preconditioner (Section 2.2, Table 1).

With eigenvalues ``μ`` of ``P⁻¹K`` lying in ``[λ₁, λ_n]`` (so eigenvalues of
``G = I − P⁻¹K`` are ``g = 1 − μ``), the preconditioned operator ``M_m⁻¹K``
has eigenvalues

```
q(μ) = μ · (α₀ + α₁(1−μ) + α₂(1−μ)² + … + α_{m−1}(1−μ)^{m−1}).
```

Following Johnson–Micchelli–Paul (1982) — whose idea the paper generalizes
from the Jacobi splitting to any splitting — the ``αᵢ`` are chosen so ``q``
is positive on ``[λ₁, λ_n]`` and as close to 1 as possible in either the
**least-squares** or the **min–max** sense:

* :func:`least_squares_coefficients` minimizes
  ``∫ w(μ) (1 − q(μ))² dμ`` over the interval (weights: uniform, ``μ`` —
  the Johnson et al. inner-product weight — or any callable);
* :func:`minmax_coefficients` takes the shifted-and-scaled Chebyshev
  polynomial ``q*(μ) = 1 − T_m(x(μ))/T_m(x(0))``, the classical min–max
  residual polynomial constrained to ``q(0) = 0``.

Setting every ``αᵢ = 1`` (:func:`neumann_coefficients`) reproduces the
unparametrized method, whose eigenvalue map is ``q(μ) = 1 − (1−μ)^m``.

:func:`fit_report` evaluates any coefficient set on an interval — range of
``q``, condition-number bound, positivity — which is how the Table-1 bench
and the SPD safety checks are driven.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.polynomial import chebyshev as npcheb
from numpy.polynomial import polynomial as nppoly

from repro.util import require

__all__ = [
    "neumann_coefficients",
    "least_squares_coefficients",
    "minmax_coefficients",
    "eigenvalue_map",
    "q_polynomial",
    "fit_report",
    "FitReport",
    "normalize_leading",
    "PAPER_TABLE1",
]

#: Table 1 of the paper: α values for the m-step SSOR PCG method, m = 2, 3, 4.
#: These are *exactly* the uniform-weight least-squares coefficients on the
#: theoretical SSOR interval [0, 1] normalized so α₀ = 1 (PCG is invariant
#: under positive scaling of M), as `normalize_leading(
#: least_squares_coefficients(m, (0.0, 1.0)))` reproduces to all printed
#: digits — pinned by the test-suite and by benchmarks/bench_table1.py.
PAPER_TABLE1: dict[int, tuple[float, ...]] = {
    2: (1.00, 5.00),
    3: (1.00, -2.00, 7.00),
    4: (1.00, 7.00, -24.50, 31.50),
}


def _check_interval(interval: tuple[float, float]) -> tuple[float, float]:
    lo, hi = float(interval[0]), float(interval[1])
    require(hi > lo, "interval must satisfy λ_n > λ₁")
    require(lo >= 0.0, "spectrum of P⁻¹K must be non-negative for SPD K, P")
    return lo, hi


def normalize_leading(coefficients: np.ndarray) -> np.ndarray:
    """Scale ``αᵢ`` so α₀ = 1 (the normalization of the paper's Table 1).

    PCG is invariant under positive scaling of the preconditioner, so this
    changes presentation only.  Requires α₀ > 0.
    """
    coefficients = np.atleast_1d(np.asarray(coefficients, dtype=float))
    require(coefficients[0] > 0, "normalization needs α₀ > 0")
    return coefficients / coefficients[0]


def neumann_coefficients(m: int) -> np.ndarray:
    """All-ones ``αᵢ``: the unparametrized m-step method (2.2).

    For the Jacobi splitting this is the truncated Neumann series of
    Dubois–Greenbaum–Rodrigue (1979).
    """
    require(m >= 1, "m must be at least 1")
    return np.ones(m)


def q_polynomial(coefficients: np.ndarray) -> nppoly.Polynomial:
    """``q(μ) = μ · Σ αᵢ (1−μ)ⁱ`` as a numpy Polynomial in μ."""
    coefficients = np.atleast_1d(np.asarray(coefficients, dtype=float))
    one_minus_mu = nppoly.Polynomial([1.0, -1.0])
    p = nppoly.Polynomial([0.0])
    power = nppoly.Polynomial([1.0])
    for alpha in coefficients:
        p = p + alpha * power
        power = power * one_minus_mu
    return nppoly.Polynomial([0.0, 1.0]) * p


def eigenvalue_map(coefficients: np.ndarray):
    """Vectorized callable ``μ ↦ q(μ)`` for a coefficient set."""
    poly = q_polynomial(coefficients)

    def q(mu):
        return poly(np.asarray(mu, dtype=float))

    return q


def least_squares_coefficients(
    m: int,
    interval: tuple[float, float],
    weight: str = "uniform",
    n_quad: int | None = None,
) -> np.ndarray:
    """Least-squares ``αᵢ``: minimize ``∫ w(μ)(1 − q(μ))² dμ`` on the interval.

    Parameters
    ----------
    m:
        Number of preconditioner steps (polynomial degree m−1 in G).
    interval:
        ``(λ₁, λ_n)`` containing the spectrum of ``P⁻¹K``.
    weight:
        ``"uniform"`` (w ≡ 1), ``"mu"`` (w(μ) = μ, the Johnson–Micchelli–
        Paul inner-product weight), or a callable μ → w(μ) > 0.
    n_quad:
        Gauss–Legendre points; the default is exact for the polynomial
        weights and ample for smooth callables.

    Notes
    -----
    The normal equations are assembled in the basis ``φᵢ(μ) = μ(1−μ)ⁱ`` and
    solved by least squares; for the small degrees the method uses (the
    paper stops at m = 10) this is well within double-precision comfort.
    """
    require(m >= 1, "m must be at least 1")
    lo, hi = _check_interval(interval)
    if weight == "uniform":
        wfun = lambda mu: np.ones_like(mu)  # noqa: E731
    elif weight == "mu":
        wfun = lambda mu: mu  # noqa: E731
    elif callable(weight):
        wfun = weight
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown weight {weight!r}")

    n_quad = n_quad or max(4 * m + 8, 24)
    nodes, weights = np.polynomial.legendre.leggauss(n_quad)
    mu = 0.5 * (hi - lo) * nodes + 0.5 * (hi + lo)
    w = wfun(mu) * weights * 0.5 * (hi - lo)
    require(bool(np.all(w >= 0)), "weight function must be non-negative")

    # φᵢ(μ) = μ(1−μ)ⁱ evaluated at the quadrature nodes.
    basis = np.empty((m, mu.size))
    basis[0] = mu
    for i in range(1, m):
        basis[i] = basis[i - 1] * (1.0 - mu)

    gram = (basis * w) @ basis.T
    rhs = (basis * w) @ np.ones_like(mu)
    alphas, *_ = np.linalg.lstsq(gram, rhs, rcond=None)
    return alphas


def minmax_coefficients(m: int, interval: tuple[float, float]) -> np.ndarray:
    """Min–max (Chebyshev) ``αᵢ`` on the interval.

    ``q*(μ) = 1 − T_m(x(μ))/T_m(x(0))`` with the affine map
    ``x(μ) = (λ_n + λ₁ − 2μ)/(λ_n − λ₁)`` sending the interval to [−1, 1].
    ``q*`` has the smallest maximum deviation from 1 on the interval among
    polynomials with ``q(0) = 0``, namely ``1/T_m(x(0))``.
    """
    require(m >= 1, "m must be at least 1")
    lo, hi = _check_interval(interval)
    x_mu = nppoly.Polynomial([(hi + lo) / (hi - lo), -2.0 / (hi - lo)])
    t_m = npcheb.Chebyshev.basis(m).convert(kind=nppoly.Polynomial)
    x0 = (hi + lo) / (hi - lo)
    denom = float(t_m(x0))
    q = nppoly.Polynomial([1.0]) - t_m(x_mu) / denom

    # q(0) = 0 by construction; deflate the root at μ = 0 to get h with
    # q(μ) = μ·h(μ), then change variables μ → 1 − g to read off αᵢ.
    coef = q.coef.copy()
    require(abs(coef[0]) < 1e-10, "min–max construction lost the q(0)=0 root")
    h = nppoly.Polynomial(coef[1:])
    h_in_g = h(nppoly.Polynomial([1.0, -1.0]))  # substitute μ = 1 − g
    alphas = np.zeros(m)
    alphas[: h_in_g.coef.size] = h_in_g.coef
    return alphas


@dataclass(frozen=True)
class FitReport:
    """Quality summary of a coefficient set on an interval."""

    coefficients: np.ndarray
    interval: tuple[float, float]
    q_min: float
    q_max: float
    max_deviation: float
    positive: bool

    @property
    def condition_bound(self) -> float:
        """Upper bound on κ(M_m⁻¹K) from the interval (∞ if q ≤ 0)."""
        if not self.positive or self.q_min <= 0:
            return float("inf")
        return self.q_max / self.q_min


def fit_report(
    coefficients: np.ndarray, interval: tuple[float, float]
) -> FitReport:
    """Evaluate ``q`` exactly on the interval (endpoints + critical points)."""
    lo, hi = _check_interval(interval)
    poly = q_polynomial(coefficients)
    candidates = [lo, hi]
    deriv_roots = poly.deriv().roots()
    for root in deriv_roots:
        if abs(root.imag) < 1e-12 and lo < root.real < hi:
            candidates.append(float(root.real))
    values = poly(np.array(candidates))
    q_min, q_max = float(values.min()), float(values.max())
    return FitReport(
        coefficients=np.atleast_1d(np.asarray(coefficients, dtype=float)),
        interval=(lo, hi),
        q_min=q_min,
        q_max=q_max,
        max_deviation=float(np.max(np.abs(1.0 - values))),
        positive=q_min > 0.0,
    )
