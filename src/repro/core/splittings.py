"""Matrix splittings ``K = P − Q`` for m-step preconditioners (Section 2).

A splitting packages three actions the preconditioner needs:

* ``apply_p_inv(r)``      — one stationary step from zero: ``P⁻¹ r``;
* ``apply_g(x)``          — the iteration matrix action
  ``G x = (I − P⁻¹K) x``;
* ``apply_w_inv / apply_wt_inv`` — a factor ``P = W Wᵀ`` (for symmetric
  splittings), so that ``P⁻¹K`` can be analyzed through the *symmetric*
  similar operator ``W⁻¹ K W⁻ᵀ`` (used by :mod:`repro.core.spectral` to
  compute the eigenvalue interval ``[λ₁, λ_n]`` the parametrization needs).

Implemented splittings:

* :class:`JacobiSplitting` — ``P = diag(K)``; its unparametrized m-step
  preconditioner is the truncated Neumann series of Dubois–Greenbaum–
  Rodrigue (1979), and its parametrized form is Johnson–Micchelli–Paul
  (1982).
* :class:`SSORSplitting` — the paper's choice (2.1):
  ``P = (1/(ω(2−ω))) (D − ωL) D⁻¹ (D − ωU)``; symmetric positive definite
  for ``0 < ω < 2``; the paper fixes ω = 1.
* :class:`SORSplitting` — ``P = D/ω − L``; *not* symmetric, provided for
  completeness and to demonstrate why SSOR is the one used in PCG.
* :class:`RichardsonSplitting` — ``P = c·I``; the simplest valid splitting,
  useful for tests where everything is computable by hand.

All splittings treat the matrix in the ordering given to them.  Under a
multicolor ordering the elementwise triangles coincide with the color-block
triangles of (3.1), so :class:`SSORSplitting` on the permuted matrix is the
same operator that :class:`repro.multicolor.sor.MStepSSOR` applies by sweeps
— a fact the test-suite verifies.
"""

from __future__ import annotations

import abc

import numpy as np
import scipy.sparse as sp

from repro.kernels import make_triangular_solver, resolve_backend, row_scale
from repro.util import require

__all__ = [
    "Splitting",
    "JacobiSplitting",
    "SSORSplitting",
    "SORSplitting",
    "RichardsonSplitting",
]


class Splitting(abc.ABC):
    """Abstract splitting ``K = P − Q`` of an SPD matrix.

    ``backend`` selects the kernel implementation of the hot paths
    (``"vectorized"`` default, ``"reference"`` for the paper-faithful
    row-sequential pin); see :mod:`repro.kernels`.  All applications accept
    a single vector ``(n,)`` or a block of right-hand sides ``(n, k)``.
    """

    def __init__(self, k: sp.spmatrix, backend: str | None = None):
        require(k.shape[0] == k.shape[1], "matrix must be square")
        self.k = k.tocsr()
        self.n = k.shape[0]
        self.backend = resolve_backend(backend)

    #: Whether P is symmetric (required for a PCG preconditioner).
    symmetric: bool = True

    @abc.abstractmethod
    def apply_p_inv(self, r: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``P⁻¹ r`` (optionally written into ``out``)."""

    def apply_g(self, x: np.ndarray) -> np.ndarray:
        """``G x = x − P⁻¹ (K x)``."""
        return x - self.apply_p_inv(self.k @ x)

    @abc.abstractmethod
    def p_matrix(self) -> sp.spmatrix:
        """Explicit ``P`` (analysis/testing; never needed by the solver)."""

    # --- symmetric factor P = W Wᵀ (only for symmetric splittings) ---------
    def apply_w_inv(self, x: np.ndarray) -> np.ndarray:
        """``W⁻¹ x`` for ``P = W Wᵀ``."""
        raise NotImplementedError(f"{type(self).__name__} has no symmetric factor")

    def apply_wt_inv(self, x: np.ndarray) -> np.ndarray:
        """``W⁻ᵀ x`` for ``P = W Wᵀ``."""
        raise NotImplementedError(f"{type(self).__name__} has no symmetric factor")

    @property
    def name(self) -> str:
        return type(self).__name__.replace("Splitting", "")


class JacobiSplitting(Splitting):
    """``P = D = diag(K)``; ``G = I − D⁻¹K`` (point Jacobi iteration)."""

    def __init__(self, k: sp.spmatrix, backend: str | None = None):
        super().__init__(k, backend=backend)
        d = self.k.diagonal().copy()
        require(bool(np.all(d > 0)), "Jacobi splitting needs a positive diagonal")
        self.d = d
        self._sqrt_d = np.sqrt(d)

    def apply_p_inv(self, r: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        r = np.asarray(r, dtype=float)
        scale = self.d if r.ndim == 1 else self.d[:, None]
        if out is not None and out.shape == r.shape:
            np.divide(r, scale, out=out)
            return out
        return r / scale

    def p_matrix(self) -> sp.spmatrix:
        return sp.diags(self.d).tocsr()

    def apply_w_inv(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return x / (self._sqrt_d if x.ndim == 1 else self._sqrt_d[:, None])

    def apply_wt_inv(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return x / (self._sqrt_d if x.ndim == 1 else self._sqrt_d[:, None])


class RichardsonSplitting(Splitting):
    """``P = c·I`` with ``c`` at least a Gershgorin bound on ``λ_max(K)``.

    With that default the iteration ``x ← x + (b − Kx)/c`` converges for any
    SPD ``K``; the m-step preconditioner it induces is a plain polynomial in
    ``K`` itself.
    """

    def __init__(self, k: sp.spmatrix, c: float | None = None, backend: str | None = None):
        super().__init__(k, backend=backend)
        if c is None:
            # Gershgorin: λ_max ≤ max_i Σ_j |K_ij|.
            c = float(np.max(np.abs(self.k).sum(axis=1)))
        require(c > 0, "Richardson constant must be positive")
        self.c = float(c)

    def apply_p_inv(self, r: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        r = np.asarray(r, dtype=float)
        if out is not None and out.shape == r.shape:
            np.divide(r, self.c, out=out)
            return out
        return r / self.c

    def p_matrix(self) -> sp.spmatrix:
        return (self.c * sp.identity(self.n)).tocsr()

    def apply_w_inv(self, x: np.ndarray) -> np.ndarray:
        return x / np.sqrt(self.c)

    def apply_wt_inv(self, x: np.ndarray) -> np.ndarray:
        return x / np.sqrt(self.c)


class _TriangularParts:
    """Shared D/L/U decomposition ``K = D − L − U`` (L, U strict parts)."""

    def __init__(self, k: sp.csr_matrix):
        d = k.diagonal().copy()
        require(bool(np.all(d > 0)), "splitting needs a positive diagonal")
        self.d = d
        self.lower = (-sp.tril(k, -1)).tocsr()  # L ≥ 0 convention: K = D − L − U
        self.upper = (-sp.triu(k, 1)).tocsr()


class SORSplitting(Splitting):
    """``P = D/ω − L`` (forward SOR).  Not symmetric — unfit for PCG alone."""

    symmetric = False

    def __init__(self, k: sp.spmatrix, omega: float = 1.0, backend: str | None = None):
        super().__init__(k, backend=backend)
        require(0.0 < omega < 2.0, "SOR requires 0 < ω < 2")
        self.omega = float(omega)
        self._parts = _TriangularParts(self.k)
        self._p = (sp.diags(self._parts.d / self.omega) - self._parts.lower).tocsr()
        self._lower_solver = None

    def _solver(self):
        """Cached triangular kernel for ``P`` (built on first use)."""
        if self._lower_solver is None:
            self._lower_solver = make_triangular_solver(
                self._p, lower=True, backend=self.backend
            )
        return self._lower_solver

    def apply_p_inv(self, r: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        return self._solver().solve(np.asarray(r, dtype=float), out=out)

    def p_matrix(self) -> sp.spmatrix:
        return self._p


class SSORSplitting(Splitting):
    """The paper's SSOR splitting (2.1), ω-parametrized.

    ``P(ω) = (1/(ω(2−ω))) (D − ωL) D⁻¹ (D − ωU)`` — symmetric positive
    definite for SPD ``K`` and ``0 < ω < 2``; the stationary iteration it
    induces is a forward then a backward SOR sweep.  The paper sets ω = 1
    ("for this ordering and few colors ω = 1 is a good choice", citing
    Adams 1983), giving ``P = (D − L) D⁻¹ (D − U)``.
    """

    def __init__(self, k: sp.spmatrix, omega: float = 1.0, backend: str | None = None):
        super().__init__(k, backend=backend)
        require(0.0 < omega < 2.0, "SSOR requires 0 < ω < 2")
        self.omega = float(omega)
        parts = _TriangularParts(self.k)
        self.d = parts.d
        self._scale = self.omega * (2.0 - self.omega)
        self._dl = (sp.diags(parts.d) - self.omega * parts.lower).tocsr()
        self._du = (sp.diags(parts.d) - self.omega * parts.upper).tocsr()
        self._sqrt_d = np.sqrt(parts.d)
        self._w_scale = self._sqrt_d * np.sqrt(self._scale)
        self._solvers = None

    def _triangular_solvers(self):
        """Cached kernels for ``(D−ωL)⁻¹`` and ``(D−ωU)⁻¹`` (built once).

        Under a multicolor ordering both factors decompose into per-color
        CSR sub-blocks with diagonal diagonal-blocks, so each solve is
        ``nc`` dense vector updates (see :mod:`repro.kernels.triangular`);
        otherwise a cached factorization (vectorized backend) or the
        row-sequential reference solver is used.
        """
        if self._solvers is None:
            self._solvers = (
                make_triangular_solver(self._dl, lower=True, backend=self.backend),
                make_triangular_solver(self._du, lower=False, backend=self.backend),
            )
        return self._solvers

    def apply_p_inv(self, r: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``P⁻¹ r = ω(2−ω) (D−ωU)⁻¹ D (D−ωL)⁻¹ r`` (two sweeps)."""
        lower, upper = self._triangular_solvers()
        z = lower.solve(np.asarray(r, dtype=float))
        row_scale(z, self.d, out=z)
        z = upper.solve(z, out=out)
        z *= self._scale
        return z

    def p_matrix(self) -> sp.spmatrix:
        d_inv = sp.diags(1.0 / self.d)
        return ((self._dl @ d_inv @ self._du) / self._scale).tocsr()

    # P = W Wᵀ with W = (D − ωL) D^{−1/2} / sqrt(ω(2−ω)).
    def apply_w_inv(self, x: np.ndarray) -> np.ndarray:
        lower, _ = self._triangular_solvers()
        z = lower.solve(np.asarray(x, dtype=float))
        row_scale(z, self._w_scale, out=z)
        return z

    def apply_wt_inv(self, x: np.ndarray) -> np.ndarray:
        _, upper = self._triangular_solvers()
        z = row_scale(np.asarray(x, dtype=float), self._w_scale)
        return upper.solve(z)
