"""The m-step preconditioner ``M_m`` of Section 2 (equations 2.2 / 2.6).

``M_m⁻¹ = (α₀ I + α₁ G + … + α_{m−1} G^{m−1}) P⁻¹`` for a splitting
``K = P − Q`` with ``G = P⁻¹Q``.  Setting every ``αᵢ = 1`` recovers the
unparametrized preconditioner (2.2) — "m steps of the iterative method" —
and for the Jacobi splitting the truncated Neumann series.

Application uses the Horner recurrence the paper builds Algorithm 2 around:

```
r̃ ← 0;  repeat m times (s = 1 … m):  r̃ ← G r̃ + α_{m−s} · P⁻¹ r
```

costing one ``P⁻¹`` solve up front plus ``(m−1)`` products with ``K`` and
``(m−1)`` further ``P⁻¹`` solves.  ``M_m`` is symmetric whenever ``P`` is
(Adams 1982 gives the precise SPD conditions; for the SSOR splitting with
0 < ω < 2 they hold, and positivity on the spectrum is checked separately by
:func:`repro.core.polynomial.fit_report`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.splittings import Splitting
from repro.kernels import WorkspacePool, matvec_into
from repro.util import OperationCounter, require

__all__ = ["MStepPreconditioner", "IdentityPreconditioner"]


@dataclass
class IdentityPreconditioner:
    """``M = I`` — plain conjugate gradients ("K = I" in the paper)."""

    counter: OperationCounter = field(default_factory=OperationCounter)

    def apply(self, r: np.ndarray) -> np.ndarray:
        self.counter.precond_applications += 1
        return np.asarray(r, dtype=float).copy()

    @property
    def m(self) -> int:
        return 0


class MStepPreconditioner:
    """Generic (splitting-based) m-step preconditioner.

    Parameters
    ----------
    splitting:
        The splitting providing ``P⁻¹`` and ``G``.  Must be symmetric for
        use inside PCG (checked; pass ``allow_nonsymmetric=True`` only for
        experiments outside PCG).
    coefficients:
        ``(α₀, …, α_{m−1})``; use ``np.ones(m)`` for the unparametrized
        method (2.2).
    """

    def __init__(
        self,
        splitting: Splitting,
        coefficients: np.ndarray,
        allow_nonsymmetric: bool = False,
    ):
        coefficients = np.atleast_1d(np.asarray(coefficients, dtype=float))
        require(coefficients.ndim == 1 and coefficients.size >= 1,
                "coefficients must be a non-empty vector")
        if not splitting.symmetric and not allow_nonsymmetric:
            raise ValueError(
                f"{splitting.name} splitting gives a nonsymmetric M; PCG requires "
                "symmetric positive definite preconditioning (Section 2.1)"
            )
        self.splitting = splitting
        self.coefficients = coefficients
        self.counter = OperationCounter()
        self._workspace = WorkspacePool()

    @property
    def m(self) -> int:
        return int(self.coefficients.size)

    def apply(self, r: np.ndarray) -> np.ndarray:
        """``M_m⁻¹ r`` via the Horner recurrence.

        Accepts a vector ``(n,)`` or a block of right-hand sides ``(n, k)``
        (applied column-wise in one batched pass).  The steady state runs
        entirely out of preallocated workspace buffers; the returned array
        is one of them and stays valid until the next ``apply`` call —
        copy it if it must outlive that.
        """
        r = np.asarray(r, dtype=float)
        ncols = 1 if r.ndim == 1 else int(r.shape[1])
        ws = self._workspace
        q = self.splitting.apply_p_inv(r, out=ws.get("q", r.shape))
        solves = 1
        matvecs = 0
        rt = ws.get("rt", r.shape)
        np.multiply(q, self.coefficients[self.m - 1], out=rt)
        kv = ws.get("kv", r.shape)
        pv = ws.get("pv", r.shape)
        for s in range(2, self.m + 1):
            matvec_into(self.splitting.k, rt, kv)
            gz = self.splitting.apply_p_inv(kv, out=pv)
            rt -= gz
            np.multiply(q, self.coefficients[self.m - s], out=kv)
            rt += kv
            solves += 1
            matvecs += 1
        self.counter.precond_applications += ncols
        self.counter.precond_steps += self.m * ncols
        self.counter.extra["p_solves"] = (
            self.counter.extra.get("p_solves", 0) + solves * ncols
        )
        self.counter.extra["inner_matvecs"] = (
            self.counter.extra.get("inner_matvecs", 0) + matvecs * ncols
        )
        return rt

    def as_dense_operator(self) -> np.ndarray:
        """Materialize ``M_m⁻¹`` in one batched application (analysis/tests)."""
        n = self.splitting.n
        return self.apply(np.eye(n)).copy()
