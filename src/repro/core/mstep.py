"""The m-step preconditioner ``M_m`` of Section 2 (equations 2.2 / 2.6).

``M_m⁻¹ = (α₀ I + α₁ G + … + α_{m−1} G^{m−1}) P⁻¹`` for a splitting
``K = P − Q`` with ``G = P⁻¹Q``.  Setting every ``αᵢ = 1`` recovers the
unparametrized preconditioner (2.2) — "m steps of the iterative method" —
and for the Jacobi splitting the truncated Neumann series.

Application uses the Horner recurrence the paper builds Algorithm 2 around:

```
r̃ ← 0;  repeat m times (s = 1 … m):  r̃ ← G r̃ + α_{m−s} · P⁻¹ r
```

costing one ``P⁻¹`` solve up front plus ``(m−1)`` products with ``K`` and
``(m−1)`` further ``P⁻¹`` solves.  ``M_m`` is symmetric whenever ``P`` is
(Adams 1982 gives the precise SPD conditions; for the SSOR splitting with
0 < ω < 2 they hold, and positivity on the spectrum is checked separately by
:func:`repro.core.polynomial.fit_report`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.splittings import Splitting
from repro.kernels import WorkspacePool, matvec_into
from repro.util import OperationCounter, require

__all__ = ["MStepPreconditioner", "IdentityPreconditioner"]


@dataclass
class IdentityPreconditioner:
    """``M = I`` — plain conjugate gradients ("K = I" in the paper).

    Accepts ``(n,)`` vectors or ``(n, k)`` blocks; block applications
    charge one ``precond_applications`` per column, so
    :func:`repro.core.pcg.block_pcg` counters reconcile column for column
    with independent solves.
    """

    #: Block applications are per-column bitwise identical to single ones.
    block_capable = True

    counter: OperationCounter = field(default_factory=OperationCounter)

    def apply(self, r: np.ndarray) -> np.ndarray:
        r = np.asarray(r, dtype=float)
        self.counter.precond_applications += 1 if r.ndim == 1 else int(r.shape[1])
        return r.copy()

    @property
    def m(self) -> int:
        return 0


class MStepPreconditioner:
    """Generic (splitting-based) m-step preconditioner.

    Parameters
    ----------
    splitting:
        The splitting providing ``P⁻¹`` and ``G``.  Must be symmetric for
        use inside PCG (checked; pass ``allow_nonsymmetric=True`` only for
        experiments outside PCG).
    coefficients:
        ``(α₀, …, α_{m−1})``; use ``np.ones(m)`` for the unparametrized
        method (2.2).
    """

    def __init__(
        self,
        splitting: Splitting,
        coefficients: np.ndarray,
        allow_nonsymmetric: bool = False,
    ):
        coefficients = np.atleast_1d(np.asarray(coefficients, dtype=float))
        require(coefficients.ndim == 1 and coefficients.size >= 1,
                "coefficients must be a non-empty vector")
        if not splitting.symmetric and not allow_nonsymmetric:
            raise ValueError(
                f"{splitting.name} splitting gives a nonsymmetric M; PCG requires "
                "symmetric positive definite preconditioning (Section 2.1)"
            )
        self.splitting = splitting
        self.coefficients = coefficients
        self.counter = OperationCounter()
        self._workspace = WorkspacePool()

    #: Block applications are per-column bitwise identical to single ones
    #: (see :func:`repro.core.pcg.block_pcg`).
    block_capable = True

    @property
    def m(self) -> int:
        return int(self.coefficients.size)

    def apply(
        self,
        r: np.ndarray,
        coefficients: np.ndarray | None = None,
        column_steps=None,
    ) -> np.ndarray:
        """``M_m⁻¹ r`` via the Horner recurrence.

        Accepts a vector ``(n,)`` or a block of right-hand sides ``(n, k)``
        (applied column-wise in one batched pass).  ``coefficients``
        optionally overrides the constructor's α schedule for this one
        application: ``(m',)`` shared by every column, or ``(m', k)``
        giving each column its own schedule — the step count is the
        override's own length.  The batched multi-cell machine lockstep
        sweeps exploit this to run cells of *different* m through one
        block application: a cell with fewer steps gets its schedule
        zero-padded at the top, which holds its column at exactly zero
        (``G·0 + 0·q = 0``) until its own first step, so every column's
        result stays bit-identical to a solo application of its unpadded
        schedule.  With padded schedules pass ``column_steps`` (each
        column's *real* step count): counters then charge every column
        exactly what its solo application would book — padding steps
        process only zeros and charge nothing — keeping the per-column
        counter-reconciliation contract of
        :func:`repro.core.pcg.block_pcg`.
        The steady state runs entirely out of preallocated
        workspace buffers; the returned array is one of them and stays
        valid until the next ``apply`` call — copy it if it must outlive
        that.
        """
        r = np.asarray(r, dtype=float)
        ncols = 1 if r.ndim == 1 else int(r.shape[1])
        if coefficients is None:
            coefficients = self.coefficients
        else:
            coefficients = np.asarray(coefficients, dtype=float)
            require(
                coefficients.shape[0] >= 1,
                "per-application coefficients need at least one step",
            )
            require(
                coefficients.ndim == 1
                or (r.ndim == 2 and coefficients.shape[1] == ncols),
                "per-column coefficients must match the block's column count",
            )
        m = int(coefficients.shape[0])
        ws = self._workspace
        q = self.splitting.apply_p_inv(r, out=ws.get("q", r.shape))
        solves = 1
        matvecs = 0
        rt = ws.get("rt", r.shape)
        np.multiply(q, coefficients[m - 1], out=rt)
        kv = ws.get("kv", r.shape)
        pv = ws.get("pv", r.shape)
        for s in range(2, m + 1):
            matvec_into(self.splitting.k, rt, kv)
            gz = self.splitting.apply_p_inv(kv, out=pv)
            rt -= gz
            np.multiply(q, coefficients[m - s], out=kv)
            rt += kv
            solves += 1
            matvecs += 1
        if column_steps is not None:
            column_steps = [int(s) for s in column_steps]
            require(
                len(column_steps) == ncols and all(
                    1 <= s <= m for s in column_steps
                ),
                "column_steps needs one real step count in [1, m'] per column",
            )
            steps = sum(column_steps)
            p_solves = sum(column_steps)  # one P⁻¹ per executed real step
            inner_matvecs = sum(s - 1 for s in column_steps)
        else:
            steps = m * ncols
            p_solves = solves * ncols
            inner_matvecs = matvecs * ncols
        self.counter.precond_applications += ncols
        self.counter.precond_steps += steps
        self.counter.extra["p_solves"] = (
            self.counter.extra.get("p_solves", 0) + p_solves
        )
        self.counter.extra["inner_matvecs"] = (
            self.counter.extra.get("inner_matvecs", 0) + inner_matvecs
        )
        return rt

    def as_dense_operator(self) -> np.ndarray:
        """Materialize ``M_m⁻¹`` in one batched application (analysis/tests)."""
        n = self.splitting.n
        return self.apply(np.eye(n)).copy()
