"""The paper's primary contribution: m-step preconditioned CG.

* :mod:`repro.core.pcg` — Algorithm 1 (the PCG driver) and plain CG;
* :mod:`repro.core.splittings` — ``K = P − Q`` splittings (Jacobi, SSOR, …);
* :mod:`repro.core.mstep` — the m-step preconditioner (2.2)/(2.6);
* :mod:`repro.core.polynomial` — least-squares and min–max parametrization
  of the ``αᵢ`` (Section 2.2, Table 1);
* :mod:`repro.core.spectral` — eigenvalue intervals of ``P⁻¹K`` and exact
  condition numbers of ``M_m⁻¹K``;
* :mod:`repro.core.convergence` — stopping rules (the paper's ``‖Δu‖_∞``
  flag-network test and residual alternatives).
"""

from repro.core.autotune import MRecommendation, predicted_cost_curve, recommend_m
from repro.core.convergence import (
    AbsoluteResidual,
    DeltaInfNorm,
    RelativeResidual,
    StoppingRule,
)
from repro.core.ichol import ICBreakdown, ICPreconditioner, ichol0
from repro.core.mstep import IdentityPreconditioner, MStepPreconditioner
from repro.core.pcg import BlockPCGResult, PCGResult, block_pcg, cg, pcg
from repro.core.polynomial import (
    PAPER_TABLE1,
    FitReport,
    eigenvalue_map,
    fit_report,
    least_squares_coefficients,
    minmax_coefficients,
    neumann_coefficients,
    normalize_leading,
    q_polynomial,
)
from repro.core.spectral import (
    condition_number,
    full_splitting_spectrum,
    power_interval,
    preconditioned_condition_number,
    preconditioned_spectrum,
    spectrum_interval,
)
from repro.core.splittings import (
    JacobiSplitting,
    RichardsonSplitting,
    SORSplitting,
    Splitting,
    SSORSplitting,
)

__all__ = [
    "MRecommendation",
    "predicted_cost_curve",
    "recommend_m",
    "AbsoluteResidual",
    "DeltaInfNorm",
    "RelativeResidual",
    "StoppingRule",
    "ICBreakdown",
    "ICPreconditioner",
    "ichol0",
    "IdentityPreconditioner",
    "MStepPreconditioner",
    "BlockPCGResult",
    "PCGResult",
    "block_pcg",
    "cg",
    "pcg",
    "PAPER_TABLE1",
    "FitReport",
    "eigenvalue_map",
    "fit_report",
    "least_squares_coefficients",
    "minmax_coefficients",
    "neumann_coefficients",
    "normalize_leading",
    "q_polynomial",
    "condition_number",
    "full_splitting_spectrum",
    "power_interval",
    "preconditioned_condition_number",
    "preconditioned_spectrum",
    "spectrum_interval",
    "JacobiSplitting",
    "RichardsonSplitting",
    "SORSplitting",
    "Splitting",
    "SSORSplitting",
]
