"""Spectrum tools for splittings and preconditioned operators.

The parametrized method needs the interval ``[λ₁, λ_n]`` containing the
eigenvalues of ``P⁻¹K`` (Section 2.2).  ``P⁻¹K`` is similar to the
*symmetric* operator ``S = W⁻¹ K W⁻ᵀ`` through the factor ``P = W Wᵀ`` each
symmetric splitting exposes, so its spectrum is computed stably:

* dense path (small n): generalized symmetric eigenproblem
  ``K v = λ P v`` via ``scipy.linalg.eigh``;
* iterative path (large n): Lanczos (``eigsh``) on ``S`` for ``λ_n``, and on
  ``S⁻¹ = Wᵀ K⁻¹ W`` (one sparse LU of K) for ``1/λ₁`` — both extreme-end
  computations, where Lanczos converges quickly.

Because the preconditioned operator ``M_m⁻¹K`` is a fixed polynomial ``q``
of ``P⁻¹K``, its spectrum — and hence κ(M_m⁻¹K), the quantity Adams (1982)
proves decreases with m — is obtained exactly by mapping eigenvalues of
``P⁻¹K`` through ``q`` rather than by re-running Lanczos per m.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla
import scipy.sparse.linalg as spla

from repro.core.polynomial import eigenvalue_map
from repro.core.splittings import Splitting
from repro.util import require

__all__ = [
    "spectrum_interval",
    "power_interval",
    "full_splitting_spectrum",
    "condition_number",
    "preconditioned_spectrum",
    "preconditioned_condition_number",
]

_DENSE_LIMIT = 700


def full_splitting_spectrum(splitting: Splitting) -> np.ndarray:
    """All eigenvalues of ``P⁻¹K`` (ascending); dense computation.

    Only for analysis on small problems — O(n³).
    """
    n = splitting.n
    require(n <= 2000, "full spectrum is a dense computation; use spectrum_interval")
    k = splitting.k.toarray()
    p = splitting.p_matrix().toarray()
    return sla.eigh(k, p, eigvals_only=True)


def _symmetric_operator(splitting: Splitting) -> spla.LinearOperator:
    """``S = W⁻¹ K W⁻ᵀ`` as a LinearOperator.

    The splitting applications are batched (``(n, k)`` blocks of vectors go
    through one color-block sweep each), so the operator advertises
    ``matmat`` too — block methods probe it with matmuls instead of ``k``
    sequential applies.
    """
    k = splitting.k

    def apply(x):
        return splitting.apply_w_inv(k @ splitting.apply_wt_inv(x))

    return spla.LinearOperator(
        (splitting.n, splitting.n), matvec=apply, matmat=apply
    )


def _inverse_operator(splitting: Splitting) -> spla.LinearOperator:
    """``S⁻¹ = Wᵀ K⁻¹ W``; factors K once."""
    lu = spla.splu(splitting.k.tocsc())
    w = _WFactor(splitting)

    def apply(x):
        return w.wt(lu.solve(w.w(x)))

    return spla.LinearOperator(
        (splitting.n, splitting.n), matvec=apply, matmat=apply
    )


class _WFactor:
    """Forward actions of W and Wᵀ derived from the inverse actions.

    ``W x`` is recovered by solving ``W⁻¹ y = x`` — but splittings only give
    us inverse applications.  Rather than invert numerically we use
    ``W = P W⁻ᵀ`` (from ``P = W Wᵀ``), which needs only ``P`` and ``W⁻ᵀ``.
    """

    def __init__(self, splitting: Splitting):
        self._p = splitting.p_matrix()
        self._splitting = splitting

    def w(self, x: np.ndarray) -> np.ndarray:
        return self._p @ self._splitting.apply_wt_inv(x)

    def wt(self, x: np.ndarray) -> np.ndarray:
        # Wᵀ = W⁻¹ P by the same identity.
        return self._splitting.apply_w_inv(self._p @ x)


def spectrum_interval(
    splitting: Splitting,
    tol: float = 1e-7,
    safety: float = 0.0,
) -> tuple[float, float]:
    """``(λ₁, λ_n)`` of ``P⁻¹K``, optionally widened by ``safety`` (relative).

    A small ``safety`` (e.g. 0.02) widens the interval used for polynomial
    fitting so that Lanczos under-estimation of the extremes cannot place an
    eigenvalue outside it (which could cost positivity of ``q``).
    """
    require(splitting.symmetric, "spectrum interval needs a symmetric splitting")
    n = splitting.n
    if n <= _DENSE_LIMIT:
        eigs = full_splitting_spectrum(splitting)
        lo, hi = float(eigs[0]), float(eigs[-1])
    else:
        s = _symmetric_operator(splitting)
        hi = float(
            spla.eigsh(s, k=1, which="LA", return_eigenvectors=False, tol=tol)[0]
        )
        s_inv = _inverse_operator(splitting)
        inv_max = float(
            spla.eigsh(s_inv, k=1, which="LA", return_eigenvectors=False, tol=tol)[0]
        )
        lo = 1.0 / inv_max
    if safety:
        span = hi - lo
        lo = max(lo - safety * span, 0.0 if lo >= 0.0 else lo * (1 + safety))
        hi = hi + safety * span
    return lo, hi


def power_interval(
    splitting: Splitting,
    iterations: int = 200,
    seed: int = 0,
    tol: float = 1e-10,
) -> tuple[float, float]:
    """Factorization-free ``[λ₁, λ_n]`` estimate by (shifted) power iteration.

    The era-appropriate estimator: the machines of the paper had no sparse
    LU, but a power iteration is just repeated matvecs and diagonal solves.
    ``λ_n`` comes from power iteration on ``S = W⁻¹KW⁻ᵀ``; ``λ₁`` from
    power iteration on the shifted operator ``λ_n·I − S``.  Estimates are
    Rayleigh quotients, hence lie *inside* the true interval — combine with
    a ``safety`` widening (see :func:`spectrum_interval`) when positivity
    of the fitted polynomial matters.
    """
    require(splitting.symmetric, "power interval needs a symmetric splitting")
    rng = np.random.default_rng(seed)
    k = splitting.k

    def s_apply(x: np.ndarray) -> np.ndarray:
        return splitting.apply_w_inv(k @ splitting.apply_wt_inv(x))

    def rayleigh_power(apply_op, n_iter: int) -> float:
        v = rng.normal(size=splitting.n)
        v /= np.linalg.norm(v)
        value = 0.0
        for _ in range(n_iter):
            w = apply_op(v)
            new_value = float(v @ w)
            norm = float(np.linalg.norm(w))
            if norm == 0.0:
                return 0.0
            v = w / norm
            if abs(new_value - value) <= tol * max(1.0, abs(new_value)):
                value = new_value
                break
            value = new_value
        return value

    hi = rayleigh_power(s_apply, iterations)
    shift = hi * (1.0 + 1e-8)
    lo_shifted = rayleigh_power(lambda x: shift * x - s_apply(x), iterations)
    lo = shift - lo_shifted
    return max(lo, 0.0), hi


def condition_number(eigenvalues_or_interval) -> float:
    """κ = λ_max / λ_min from a spectrum array or an (lo, hi) pair."""
    arr = np.atleast_1d(np.asarray(eigenvalues_or_interval, dtype=float))
    lo, hi = float(arr.min()), float(arr.max())
    if lo <= 0:
        return float("inf")
    return hi / lo


def preconditioned_spectrum(
    splitting_eigenvalues: np.ndarray, coefficients: np.ndarray
) -> np.ndarray:
    """Eigenvalues of ``M_m⁻¹K``: the map ``q`` applied to eigs of ``P⁻¹K``."""
    q = eigenvalue_map(coefficients)
    return np.sort(q(np.asarray(splitting_eigenvalues, dtype=float)))


def preconditioned_condition_number(
    splitting: Splitting, coefficients: np.ndarray
) -> float:
    """Exact κ(M_m⁻¹K) on a small problem (full spectrum + polynomial map)."""
    eigs = full_splitting_spectrum(splitting)
    mapped = preconditioned_spectrum(eigs, coefficients)
    return condition_number(mapped)
