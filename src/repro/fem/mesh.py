"""Rectangular plate mesh with the paper's R/B/G multicolor structure.

Geometry and combinatorics of the test problem in Section 3:

* ``nrows`` rows of nodes (the paper's ``a``) by ``ncols`` columns, the first
  column fully constrained (so ``b = ncols − 1`` columns of unconstrained
  nodes and ``N = 2·a·b`` unknowns — two displacements per node).
* Each grid cell is split into two linear triangles by its **'/' diagonal**
  (connecting the cell's south-east and north-west corners).  An interior
  node is then adjacent to exactly six neighbors — W, E, S, N, NW, SE — which
  with the node itself and two dofs per node yields the ≤14-nonzero stencil
  of Figure 2.
* Nodes are colored ``c(i, j) = (i + 2j) mod 3`` (0 = Red, 1 = Black,
  2 = Green).  Every triangle receives three distinct colors, which is what
  decouples the equations color-by-color (Figure 1).  This closed form equals
  the paper's *sequential* R/B/G numbering that wraps from each row to the
  next precisely when ``ncols ≡ 2 (mod 3)`` — the condition the paper states
  as "the last node in the first row must be Black".  All of the paper's
  meshes (a = 20, 41, 62, 80 with square grids) satisfy it.

Node indices are ``node = j·ncols + i`` for column ``i`` (left→right) and row
``j`` (bottom→top), matching the paper's "left to right, bottom to top"
numbering within each color.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.util import require

__all__ = ["COLOR_NAMES", "RED", "BLACK", "GREEN", "NEIGHBOR_OFFSETS", "PlateMesh"]

RED, BLACK, GREEN = 0, 1, 2
COLOR_NAMES = ("R", "B", "G")

#: Offsets (di, dj) of the six mesh neighbors under the '/' triangulation:
#: west, east, south, north, north-west, south-east (Figure 2).
NEIGHBOR_OFFSETS: tuple[tuple[int, int], ...] = (
    (-1, 0),
    (1, 0),
    (0, -1),
    (0, 1),
    (-1, 1),
    (1, -1),
)


@dataclass(frozen=True)
class PlateMesh:
    """Regular ``nrows × ncols`` plate grid, '/'-triangulated and 3-colored.

    Parameters
    ----------
    nrows:
        Number of rows of nodes (the paper's ``a``).
    ncols:
        Number of columns of nodes (``b + 1``; column 0 is constrained).
    width, height:
        Physical extents of the plate (default: unit square).
    """

    nrows: int
    ncols: int
    width: float = 1.0
    height: float = 1.0

    def __post_init__(self) -> None:
        require(self.nrows >= 2, "plate needs at least 2 rows of nodes")
        require(self.ncols >= 2, "plate needs at least 2 columns of nodes")
        require(self.width > 0 and self.height > 0, "plate extents must be positive")

    # ------------------------------------------------------------------ sizes
    @property
    def n_nodes(self) -> int:
        """Total node count including the constrained column."""
        return self.nrows * self.ncols

    @property
    def a(self) -> int:
        """The paper's ``a``: number of rows of nodes."""
        return self.nrows

    @property
    def b(self) -> int:
        """The paper's ``b``: number of columns of *unconstrained* nodes."""
        return self.ncols - 1

    @property
    def n_unknowns(self) -> int:
        """``2·a·b`` — the dimension of the stiffness system (1.1)."""
        return 2 * self.a * self.b

    @property
    def sequential_wrap_consistent(self) -> bool:
        """Whether the sequential R/B/G row-wrap numbering is a valid coloring.

        True iff ``ncols ≡ 2 (mod 3)``, the paper's "last node in the first
        row must be Black" condition.  The closed-form coloring used here is
        valid regardless; this flag only reports whether it coincides with the
        sequential description in Section 3.1.
        """
        return self.ncols % 3 == 2

    # ------------------------------------------------------------- node maps
    def node_id(self, i: int, j: int) -> int:
        """Node index of column ``i``, row ``j``."""
        require(0 <= i < self.ncols and 0 <= j < self.nrows, "node out of range")
        return j * self.ncols + i

    def node_ij(self, node: int) -> tuple[int, int]:
        """Inverse of :meth:`node_id`: ``(column, row)`` of a node index."""
        require(0 <= node < self.n_nodes, "node out of range")
        return node % self.ncols, node // self.ncols

    @cached_property
    def coordinates(self) -> np.ndarray:
        """``(n_nodes, 2)`` array of node coordinates."""
        xs = np.linspace(0.0, self.width, self.ncols)
        ys = np.linspace(0.0, self.height, self.nrows)
        xx, yy = np.meshgrid(xs, ys)  # row-major: yy varies along axis 0
        return np.column_stack([xx.ravel(), yy.ravel()])

    # ---------------------------------------------------------- triangulation
    @cached_property
    def triangles(self) -> np.ndarray:
        """``(n_triangles, 3)`` node indices, counter-clockwise.

        Each cell contributes a lower triangle ``(SW, SE, NW)`` and an upper
        triangle ``(SE, NE, NW)``; the shared edge SE–NW is the '/' diagonal.
        """
        tris = []
        for j in range(self.nrows - 1):
            for i in range(self.ncols - 1):
                sw = self.node_id(i, j)
                se = self.node_id(i + 1, j)
                nw = self.node_id(i, j + 1)
                ne = self.node_id(i + 1, j + 1)
                tris.append((sw, se, nw))
                tris.append((se, ne, nw))
        return np.array(tris, dtype=np.int64)

    @property
    def n_triangles(self) -> int:
        return 2 * (self.nrows - 1) * (self.ncols - 1)

    def neighbors(self, node: int) -> list[int]:
        """Mesh neighbors of ``node`` (≤6, per the Figure-2 stencil)."""
        i, j = self.node_ij(node)
        out = []
        for di, dj in NEIGHBOR_OFFSETS:
            ii, jj = i + di, j + dj
            if 0 <= ii < self.ncols and 0 <= jj < self.nrows:
                out.append(self.node_id(ii, jj))
        return out

    @cached_property
    def adjacency(self) -> dict[int, tuple[int, ...]]:
        """Node → tuple of neighbor nodes for the whole mesh."""
        return {node: tuple(self.neighbors(node)) for node in range(self.n_nodes)}

    # ---------------------------------------------------------------- colors
    def color_ij(self, i: int, j: int) -> int:
        """Color of grid position ``(i, j)``: ``(i + 2j) mod 3``."""
        return (i + 2 * j) % 3

    @cached_property
    def node_colors(self) -> np.ndarray:
        """``(n_nodes,)`` array of colors (0 = R, 1 = B, 2 = G)."""
        i = np.arange(self.n_nodes) % self.ncols
        j = np.arange(self.n_nodes) // self.ncols
        return (i + 2 * j) % 3

    def color_counts(self, include_constrained: bool = True) -> np.ndarray:
        """Number of nodes of each color."""
        colors = self.node_colors
        if not include_constrained:
            colors = colors[self.unconstrained_nodes]
        return np.bincount(colors, minlength=3)

    def validate_coloring(self) -> None:
        """Check that every triangle has three distinct colors (Figure 1)."""
        colors = self.node_colors[self.triangles]
        distinct = (
            (colors[:, 0] != colors[:, 1])
            & (colors[:, 1] != colors[:, 2])
            & (colors[:, 0] != colors[:, 2])
        )
        require(bool(np.all(distinct)), "triangle with repeated node color")

    def coloring_ascii(self, max_rows: int | None = None) -> str:
        """ASCII rendition of Figure 1 (top row printed first)."""
        rows = []
        nrows = self.nrows if max_rows is None else min(self.nrows, max_rows)
        for j in reversed(range(nrows)):
            rows.append(
                " ".join(COLOR_NAMES[self.color_ij(i, j)] for i in range(self.ncols))
            )
        return "\n".join(rows)

    # ------------------------------------------------------------ constraints
    @cached_property
    def constrained_nodes(self) -> np.ndarray:
        """Nodes of the constrained (left, x = 0) edge, both dofs fixed."""
        return np.array(
            [self.node_id(0, j) for j in range(self.nrows)], dtype=np.int64
        )

    @cached_property
    def loaded_nodes(self) -> np.ndarray:
        """Nodes of the loaded (right, x = width) edge."""
        return np.array(
            [self.node_id(self.ncols - 1, j) for j in range(self.nrows)],
            dtype=np.int64,
        )

    @cached_property
    def is_constrained(self) -> np.ndarray:
        """Boolean mask over nodes: True on the constrained column."""
        mask = np.zeros(self.n_nodes, dtype=bool)
        mask[self.constrained_nodes] = True
        return mask

    @cached_property
    def unconstrained_nodes(self) -> np.ndarray:
        """Unconstrained node indices in natural (row-major) order."""
        return np.flatnonzero(~self.is_constrained)

    # ------------------------------------------------------------ dof numbering
    @cached_property
    def node_rank(self) -> np.ndarray:
        """Rank of each node among unconstrained nodes (−1 if constrained)."""
        rank = -np.ones(self.n_nodes, dtype=np.int64)
        rank[self.unconstrained_nodes] = np.arange(self.unconstrained_nodes.size)
        return rank

    def dof_index(self, node: int, dof: int) -> int:
        """Natural unknown index of ``(node, dof)``; dof 0 = u, 1 = v.

        Returns −1 for constrained nodes.  Natural ordering interleaves the
        two displacements node by node: ``2·rank + dof``.
        """
        require(dof in (0, 1), "dof must be 0 (u) or 1 (v)")
        r = int(self.node_rank[node])
        return -1 if r < 0 else 2 * r + dof

    @cached_property
    def dof_node(self) -> np.ndarray:
        """``(n_unknowns,)`` node index of every natural unknown."""
        return np.repeat(self.unconstrained_nodes, 2)

    @cached_property
    def dof_component(self) -> np.ndarray:
        """``(n_unknowns,)`` displacement component (0 = u, 1 = v)."""
        return np.tile(np.array([0, 1], dtype=np.int64), self.unconstrained_nodes.size)

    # ------------------------------------------------------------ diagnostics
    def max_vector_length(self) -> int:
        """Longest single-color vector *including* constrained nodes.

        This is the CYBER maximum vector length ``v`` of Section 3.1
        (≈ ``a(b+1)/3``; ≈ ``a²/3`` for the unit-square meshes of Table 2).
        """
        return int(self.color_counts(include_constrained=True).max())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlateMesh(a={self.a} rows × {self.ncols} cols, "
            f"{self.n_unknowns} unknowns, v={self.max_vector_length()})"
        )
