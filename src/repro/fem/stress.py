"""Stress recovery for the plane-stress plate.

The paper solves for displacements only; a structural engineer immediately
post-processes them.  The CST element carries constant strain
``ε = B·uₑ`` and stress ``σ = D·ε`` per triangle; nodal values are the
area-weighted average of the surrounding elements (the standard recovery
for linear triangles).  Used by the plate example and by tests that check
the physics end to end (uniform uniaxial tension reproduces
``σ_xx = traction``, ``σ_yy ≈ 0`` away from the clamped edge).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fem.mesh import PlateMesh
from repro.fem.plane_stress import ElasticMaterial
from repro.util import require

__all__ = ["ElementStress", "element_stresses", "nodal_stresses", "von_mises"]


@dataclass(frozen=True)
class ElementStress:
    """Constant stress state of one triangle: (σ_xx, σ_yy, τ_xy)."""

    sigma_xx: float
    sigma_yy: float
    tau_xy: float

    @property
    def von_mises(self) -> float:
        sx, sy, txy = self.sigma_xx, self.sigma_yy, self.tau_xy
        return float(np.sqrt(sx * sx - sx * sy + sy * sy + 3.0 * txy * txy))


def _full_displacements(mesh: PlateMesh, u_reduced: np.ndarray) -> np.ndarray:
    """Natural reduced solution → full-mesh dof vector (constrained = 0)."""
    require(u_reduced.shape == (mesh.n_unknowns,), "solution length mismatch")
    full = np.zeros(2 * mesh.n_nodes)
    nodes = mesh.unconstrained_nodes
    full[2 * nodes] = u_reduced[0::2]
    full[2 * nodes + 1] = u_reduced[1::2]
    return full


def element_stresses(
    mesh: PlateMesh,
    material: ElasticMaterial,
    u_reduced: np.ndarray,
) -> list[ElementStress]:
    """Per-triangle constant stresses from a reduced displacement vector."""
    full = _full_displacements(mesh, u_reduced)
    d = material.d_matrix
    coords = mesh.coordinates
    out = []
    for tri in mesh.triangles:
        x, y = coords[tri, 0], coords[tri, 1]
        area2 = (x[1] - x[0]) * (y[2] - y[0]) - (x[2] - x[0]) * (y[1] - y[0])
        b = np.array([y[1] - y[2], y[2] - y[0], y[0] - y[1]]) / area2
        c = np.array([x[2] - x[1], x[0] - x[2], x[1] - x[0]]) / area2
        ue = np.empty(6)
        ue[0::2] = full[2 * tri]
        ue[1::2] = full[2 * tri + 1]
        strain = np.array(
            [
                float(b @ ue[0::2]),
                float(c @ ue[1::2]),
                float(c @ ue[0::2] + b @ ue[1::2]),
            ]
        )
        sigma = d @ strain
        out.append(ElementStress(float(sigma[0]), float(sigma[1]), float(sigma[2])))
    return out


def nodal_stresses(
    mesh: PlateMesh,
    material: ElasticMaterial,
    u_reduced: np.ndarray,
) -> np.ndarray:
    """``(n_nodes, 3)`` area-weighted nodal stress recovery."""
    stresses = element_stresses(mesh, material, u_reduced)
    coords = mesh.coordinates
    acc = np.zeros((mesh.n_nodes, 3))
    weight = np.zeros(mesh.n_nodes)
    for tri, stress in zip(mesh.triangles, stresses):
        x, y = coords[tri, 0], coords[tri, 1]
        area = 0.5 * abs(
            (x[1] - x[0]) * (y[2] - y[0]) - (x[2] - x[0]) * (y[1] - y[0])
        )
        vec = np.array([stress.sigma_xx, stress.sigma_yy, stress.tau_xy])
        for node in tri:
            acc[node] += area * vec
            weight[node] += area
    weight[weight == 0.0] = 1.0
    return acc / weight[:, None]


def von_mises(nodal: np.ndarray) -> np.ndarray:
    """Von Mises equivalent stress from ``(n, 3)`` nodal stresses."""
    sx, sy, txy = nodal[:, 0], nodal[:, 1], nodal[:, 2]
    return np.sqrt(sx * sx - sx * sy + sy * sy + 3.0 * txy * txy)
