"""Finite-element substrate: the paper's structural test problem.

The evaluation problem in Adams (1983) is plane-stress displacement of a
rectangular plate discretized with linear (CST) triangular elements on a
regular grid, '/'-diagonal triangulation, nodes colored Red/Black/Green
(Figure 1), left edge constrained, right edge loaded.  This package builds
that problem from scratch:

* :mod:`repro.fem.mesh` — the plate grid, triangulation, node coloring, and
  constrained/loaded edge bookkeeping;
* :mod:`repro.fem.plane_stress` — element stiffness and global assembly;
* :mod:`repro.fem.stencil` — the ≤14-nonzero grid-point stencil of Figure 2;
* :mod:`repro.fem.model_problems` — ready-to-solve ``K u = f`` factories
  (the paper's plate plus a 5-point Poisson secondary problem);
* :mod:`repro.fem.matrixfree` — matrix-free stencil operators for the
  regular-mesh problems (the ``"stencil"`` solver backend's substrate).
"""

from repro.fem.irregular import (
    IrregularProblem,
    l_shaped_problem,
    perforated_problem,
)
from repro.fem.matrixfree import (
    STENCIL_SCENARIOS,
    anisotropic_stencil,
    plate_stencil,
    poisson_stencil,
    stencil_interval,
    stencil_operator,
)
from repro.fem.mesh import COLOR_NAMES, PlateMesh
from repro.fem.model_problems import (
    AnisotropicProblem,
    PlateProblem,
    PoissonProblem,
    anisotropic_problem,
    plate_problem,
    poisson_problem,
    variable_plate_problem,
)
from repro.fem.plane_stress import (
    ElasticMaterial,
    assemble_from_triangles,
    assemble_plate,
    assemble_plate_full,
    cst_stiffness,
)
from repro.fem.stencil import node_stencil, stencil_summary
from repro.fem.stress import element_stresses, nodal_stresses, von_mises

__all__ = [
    "COLOR_NAMES",
    "PlateMesh",
    "ElasticMaterial",
    "assemble_from_triangles",
    "assemble_plate",
    "assemble_plate_full",
    "cst_stiffness",
    "PlateProblem",
    "PoissonProblem",
    "AnisotropicProblem",
    "plate_problem",
    "variable_plate_problem",
    "poisson_problem",
    "anisotropic_problem",
    "IrregularProblem",
    "l_shaped_problem",
    "perforated_problem",
    "node_stencil",
    "stencil_summary",
    "STENCIL_SCENARIOS",
    "anisotropic_stencil",
    "plate_stencil",
    "poisson_stencil",
    "stencil_interval",
    "stencil_operator",
    "element_stresses",
    "nodal_stresses",
    "von_mises",
]
