"""Plane-stress CST elements and global stiffness assembly.

The plate problem of Section 3: linear basis functions on triangles, the
partial differential equations of plane stress (Norrie & DeVries 1978).  The
element is the classical constant-strain triangle (CST):

* constitutive matrix (plane stress)
  ``D = E/(1−ν²) · [[1, ν, 0], [ν, 1, 0], [0, 0, (1−ν)/2]]``,
* strain-displacement matrix ``B`` from the shape-function gradients,
* element stiffness ``Kₑ = t·A·Bᵀ D B`` (6×6, dofs ``u₁ v₁ u₂ v₂ u₃ v₃``).

Assembly eliminates the constrained dofs (left column, ``u = v = 0``) and
applies a uniform x-traction on the loaded (right) edge through consistent
nodal loads.  The result is the SPD stiffness system ``K u = f`` of (1.1)
with ≤14 nonzeros per row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.fem.mesh import PlateMesh
from repro.util import require

__all__ = [
    "ElasticMaterial",
    "cst_stiffness",
    "element_stiffness_batch",
    "assemble_from_triangles",
    "assemble_plate",
    "assemble_plate_full",
    "edge_traction_loads",
]


@dataclass(frozen=True)
class ElasticMaterial:
    """Isotropic plane-stress material.

    Parameters
    ----------
    youngs_modulus:
        E > 0.  The paper does not state material constants; the default E = 1
        only scales ``K`` and ``f`` together and leaves iteration counts
        unchanged.
    poissons_ratio:
        ν ∈ (−1, 0.5).  Default 0.3 (typical structural metal).
    thickness:
        Plate thickness t > 0.
    """

    youngs_modulus: float = 1.0
    poissons_ratio: float = 0.3
    thickness: float = 1.0

    def __post_init__(self) -> None:
        require(self.youngs_modulus > 0, "E must be positive")
        require(-1.0 < self.poissons_ratio < 0.5, "ν must lie in (−1, 0.5)")
        require(self.thickness > 0, "thickness must be positive")

    @property
    def d_matrix(self) -> np.ndarray:
        """3×3 plane-stress constitutive matrix."""
        e, nu = self.youngs_modulus, self.poissons_ratio
        c = e / (1.0 - nu * nu)
        return c * np.array(
            [[1.0, nu, 0.0], [nu, 1.0, 0.0], [0.0, 0.0, 0.5 * (1.0 - nu)]]
        )


def cst_stiffness(coords: np.ndarray, material: ElasticMaterial) -> np.ndarray:
    """Element stiffness of a constant-strain triangle.

    Parameters
    ----------
    coords:
        ``(3, 2)`` vertex coordinates, counter-clockwise.
    material:
        Plane-stress material.

    Returns
    -------
    ``(6, 6)`` symmetric positive semidefinite matrix over dofs
    ``(u₁, v₁, u₂, v₂, u₃, v₃)``; its nullspace is spanned by the three rigid
    body modes (two translations and the infinitesimal rotation).
    """
    coords = np.asarray(coords, dtype=float)
    require(coords.shape == (3, 2), "coords must be (3, 2)")
    x, y = coords[:, 0], coords[:, 1]
    # Signed doubled area; positive for CCW vertex order.
    area2 = (x[1] - x[0]) * (y[2] - y[0]) - (x[2] - x[0]) * (y[1] - y[0])
    require(area2 > 0, "triangle is degenerate or clockwise")
    # Shape function gradients: Nᵢ = (aᵢ + bᵢ x + cᵢ y) / (2A)
    b = np.array([y[1] - y[2], y[2] - y[0], y[0] - y[1]]) / area2
    c = np.array([x[2] - x[1], x[0] - x[2], x[1] - x[0]]) / area2
    bmat = np.zeros((3, 6))
    bmat[0, 0::2] = b
    bmat[1, 1::2] = c
    bmat[2, 0::2] = c
    bmat[2, 1::2] = b
    area = 0.5 * area2
    ke = material.thickness * area * bmat.T @ material.d_matrix @ bmat
    return 0.5 * (ke + ke.T)  # enforce exact symmetry


def edge_traction_loads(
    mesh: PlateMesh,
    material: ElasticMaterial,
    traction_x: float = 1.0,
    traction_y: float = 0.0,
) -> np.ndarray:
    """Consistent nodal loads for a uniform traction on the loaded edge.

    For linear elements a uniform traction ``(tx, ty)`` (force per unit area)
    on an edge segment of length ``L`` contributes ``t·L/2·(tx, ty)`` to each
    end node.  Returns the full-mesh load vector indexed ``2·node + dof``.
    """
    f = np.zeros(2 * mesh.n_nodes)
    nodes = mesh.loaded_nodes
    coords = mesh.coordinates
    for lo, hi in zip(nodes[:-1], nodes[1:]):
        length = float(np.linalg.norm(coords[hi] - coords[lo]))
        half = 0.5 * material.thickness * length
        for node in (lo, hi):
            f[2 * node + 0] += half * traction_x
            f[2 * node + 1] += half * traction_y
    return f


def element_stiffness_batch(
    coords: np.ndarray,
    triangles: np.ndarray,
    material: ElasticMaterial,
    element_scale: np.ndarray | None = None,
) -> np.ndarray:
    """``(n_tri, 6, 6)`` CST stiffnesses for a batch of triangles.

    One batched einsum (``Kₑ = t·A·Bᵀ D B``) whose per-element results are
    independent of how the triangle set is chunked — the matrix-free plate
    stencil builder relies on that to reproduce these stiffnesses bitwise,
    cell row by cell row.  The Python-loop reference is
    :func:`cst_stiffness`, against which this path is tested.
    """
    triangles = np.asarray(triangles, dtype=np.int64)
    x = coords[triangles, 0]  # (n_tri, 3)
    y = coords[triangles, 1]
    area2 = (x[:, 1] - x[:, 0]) * (y[:, 2] - y[:, 0]) - (
        x[:, 2] - x[:, 0]
    ) * (y[:, 1] - y[:, 0])
    require(bool(np.all(area2 > 0)), "degenerate or clockwise triangle present")

    # Shape-function gradient coefficients, per triangle.
    b = np.stack(
        [y[:, 1] - y[:, 2], y[:, 2] - y[:, 0], y[:, 0] - y[:, 1]], axis=1
    ) / area2[:, None]
    c = np.stack(
        [x[:, 2] - x[:, 1], x[:, 0] - x[:, 2], x[:, 1] - x[:, 0]], axis=1
    ) / area2[:, None]

    bmat = np.zeros((triangles.shape[0], 3, 6))
    bmat[:, 0, 0::2] = b
    bmat[:, 1, 1::2] = c
    bmat[:, 2, 0::2] = c
    bmat[:, 2, 1::2] = b

    d = material.d_matrix
    scale = material.thickness * 0.5 * area2  # t·A per triangle
    if element_scale is not None:
        scale = scale * element_scale
    ke = np.einsum("eki,kl,elj->eij", bmat, d, bmat) * scale[:, None, None]
    return 0.5 * (ke + np.transpose(ke, (0, 2, 1)))  # exact symmetry


def _sum_duplicates_ordered(rows, cols, vals, n_full):
    """Deterministic COO→CSR: duplicate ``(row, col)`` entries summed
    strictly left-to-right in their original (element) order.

    ``np.lexsort`` is stable, so within one ``(row, col)`` group the
    values keep triangle order; the accumulation loop then adds them one
    rank at a time — an exact left-to-right chain, unlike scipy's
    ``sum_duplicates`` (whose unstable sort can reorder long rows) or
    ``np.add.reduceat`` (whose pairwise reduction reassociates).  That
    determinism is what lets the window-accumulated plate stencil builder
    reproduce the assembled coefficients bitwise.
    """
    order = np.lexsort((cols, rows))
    r_s, c_s, v_s = rows[order], cols[order], vals[order]
    new = np.empty(r_s.size, dtype=bool)
    new[0] = True
    np.logical_or(r_s[1:] != r_s[:-1], c_s[1:] != c_s[:-1], out=new[1:])
    starts = np.flatnonzero(new)
    counts = np.diff(np.append(starts, r_s.size))
    acc = v_s[starts].copy()
    for p in range(1, int(counts.max())):
        more = counts > p
        acc[more] += v_s[starts[more] + p]
    idx_dtype = np.int32 if n_full < 2**31 else np.int64
    indptr = np.zeros(n_full + 1, dtype=idx_dtype)
    np.cumsum(np.bincount(r_s[starts], minlength=n_full), out=indptr[1:])
    return sp.csr_matrix(
        (acc, c_s[starts].astype(idx_dtype), indptr), shape=(n_full, n_full)
    )


def assemble_from_triangles(
    coords: np.ndarray,
    triangles: np.ndarray,
    material: ElasticMaterial,
    element_scale: np.ndarray | None = None,
) -> sp.csr_matrix:
    """Assemble a plane-stress stiffness over an arbitrary triangle set.

    Dof numbering is ``2·point + component`` over all ``coords`` rows; the
    result is symmetric positive semidefinite (rigid modes — and the free
    modes of any points untouched by ``triangles`` — in the nullspace).
    This is the shared kernel behind the rectangular plate and the
    irregular-region problems of :mod:`repro.fem.irregular`.

    ``element_scale`` (one positive factor per triangle) multiplies each
    element stiffness — a spatially varying Young's modulus, since ``E``
    enters ``Kₑ`` linearly.  The variable-coefficient plate scenarios are
    built on this; ``None`` keeps the homogeneous material.

    Element matrices come from :func:`element_stiffness_batch`; duplicate
    scatter targets are summed in deterministic triangle order, so the
    assembled coefficients are bitwise reproducible by any builder that
    accumulates contributions in the same order (the plate stencil).
    """
    triangles = np.asarray(triangles, dtype=np.int64)
    n_tri = triangles.shape[0]
    if element_scale is not None:
        element_scale = np.asarray(element_scale, dtype=float)
        require(element_scale.shape == (n_tri,),
                "element_scale needs one factor per triangle")
        require(bool(np.all(element_scale > 0)),
                "element_scale factors must be positive")
    if n_tri == 0:
        n_full = 2 * coords.shape[0]
        return sp.csr_matrix((n_full, n_full))

    ke = element_stiffness_batch(coords, triangles, material, element_scale)

    dofs = np.empty((n_tri, 6), dtype=np.int64)
    dofs[:, 0::2] = 2 * triangles
    dofs[:, 1::2] = 2 * triangles + 1
    rows = np.repeat(dofs, 6, axis=1).ravel()
    cols = np.tile(dofs, (1, 6)).ravel()

    n_full = 2 * coords.shape[0]
    return _sum_duplicates_ordered(rows, cols, ke.ravel(), n_full)


def assemble_plate_full(
    mesh: PlateMesh,
    material: ElasticMaterial | None = None,
    traction_x: float = 1.0,
    traction_y: float = 0.0,
    element_scale: np.ndarray | None = None,
) -> tuple[sp.csr_matrix, np.ndarray]:
    """Assemble the *unconstrained* plate system over all ``2·n_nodes`` dofs.

    Dof numbering is ``2·node + component``.  No boundary conditions are
    applied: the matrix is symmetric positive *semi*definite (rigid modes in
    the nullspace).  The CYBER simulator builds its padded color vectors on
    this full system, enforcing the constraints with the control-vector
    mask rather than by elimination (Section 3.1).
    """
    material = material or ElasticMaterial()
    k_full = assemble_from_triangles(
        mesh.coordinates, mesh.triangles, material, element_scale=element_scale
    )
    f_full = edge_traction_loads(mesh, material, traction_x, traction_y)
    return k_full, f_full


def assemble_plate(
    mesh: PlateMesh,
    material: ElasticMaterial | None = None,
    traction_x: float = 1.0,
    traction_y: float = 0.0,
    element_scale: np.ndarray | None = None,
) -> tuple[sp.csr_matrix, np.ndarray]:
    """Assemble the constrained plane-stress system ``K u = f`` of (1.1).

    Returns
    -------
    K:
        ``(2ab, 2ab)`` CSR stiffness matrix over the unconstrained dofs in
        the mesh's *natural* ordering (``2·node_rank + dof``); symmetric
        positive definite, ≤14 nonzeros per row.
    f:
        Load vector from the uniform traction on the loaded edge.
    """
    k_full, f_full = assemble_plate_full(
        mesh, material, traction_x, traction_y, element_scale=element_scale
    )

    # Eliminate constrained dofs.  Fixed displacements are zero so the load
    # carries over unchanged on the free dofs.
    free_nodes = mesh.unconstrained_nodes
    free_dofs = np.empty(2 * free_nodes.size, dtype=np.int64)
    free_dofs[0::2] = 2 * free_nodes
    free_dofs[1::2] = 2 * free_nodes + 1

    k = k_full[free_dofs][:, free_dofs].tocsr()
    k.sum_duplicates()
    k.eliminate_zeros()
    f = f_full[free_dofs]
    return k, f
