"""Ready-to-solve model problems.

* :func:`plate_problem` — the paper's plane-stress plate (Section 3): the
  primary workload for Tables 2 and 3.
* :func:`variable_plate_problem` — the same plate with a spatially varying
  Young's modulus (graded stiffness or a soft/hard inclusion): the
  multicolor structure is value-blind, so the identical machinery runs on
  heterogeneous material.
* :func:`poisson_problem` — a 5-point Laplacian with the classical red/black
  two-coloring: a secondary workload exercising the same multicolor
  machinery with a different color count, as the paper notes Algorithm 2
  "can easily be modified" to other discretizations.
* :func:`anisotropic_problem` — the anisotropic stencil
  ``−ε·u_xx − u_yy = g``: same red/black coloring, a much harder spectrum
  as ε → 0 (the classic stress test for polynomial preconditioners).

All return the system ``K u = f``, the unknown→color-group map that the
multicolor package consumes, and human-readable group labels.

The regular-mesh builders (plate, poisson, anisotropic) also take
``assemble=False``: the load vector and color map are built as usual but
``k`` stays ``None`` — the matrix-free mode for the ``"stencil"`` solver
backend (:mod:`repro.fem.matrixfree`), which applies ``K`` straight off
the grid stencil and never pays assembly memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np
import scipy.sparse as sp

from repro.fem.mesh import PlateMesh
from repro.fem.plane_stress import (
    ElasticMaterial,
    assemble_plate,
    edge_traction_loads,
)
from repro.util import require

__all__ = [
    "PlateProblem",
    "PoissonProblem",
    "AnisotropicProblem",
    "plate_problem",
    "variable_plate_problem",
    "poisson_problem",
    "anisotropic_problem",
]


@dataclass(frozen=True)
class PlateProblem:
    """The paper's plane-stress plate system in natural dof ordering.

    The six color groups of system (3.1) are, in order,
    ``R(u), R(v), B(u), B(v), G(u), G(v)``; :attr:`group_of_unknown` maps each
    natural unknown to its group index ``2·color + dof``.
    """

    mesh: PlateMesh
    material: ElasticMaterial
    #: Assembled stiffness, or ``None`` when built with ``assemble=False``
    #: (matrix-free: only the ``"stencil"`` backend can serve the problem).
    k: sp.csr_matrix | None
    f: np.ndarray
    #: Optional per-triangle stiffness multiplier (a spatially varying
    #: Young's modulus).  ``None`` means homogeneous material; consumers
    #: that reassemble the full padded system (the CYBER simulator) must
    #: thread it through so their matrix matches ``k``.
    element_scale: np.ndarray | None = None

    GROUP_LABELS = ("Ru", "Rv", "Bu", "Bv", "Gu", "Gv")

    @property
    def n(self) -> int:
        return self.k.shape[0] if self.k is not None else self.mesh.n_unknowns

    @cached_property
    def group_of_unknown(self) -> np.ndarray:
        """Color-group index (0..5) of every natural unknown."""
        node_colors = self.mesh.node_colors[self.mesh.dof_node]
        return 2 * node_colors + self.mesh.dof_component

    @property
    def n_groups(self) -> int:
        return 6

    @property
    def group_labels(self) -> tuple[str, ...]:
        return self.GROUP_LABELS

    def direct_solution(self) -> np.ndarray:
        """Reference solution via a sparse direct factorization."""
        require(self.k is not None,
                "matrix-free problem (assemble=False) has no assembled matrix")
        return sp.linalg.spsolve(self.k.tocsc(), self.f)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlateProblem({self.mesh}, n={self.n})"


def plate_problem(
    nrows: int,
    ncols: int | None = None,
    material: ElasticMaterial | None = None,
    traction_x: float = 1.0,
    traction_y: float = 0.0,
    width: float = 1.0,
    height: float = 1.0,
    assemble: bool = True,
) -> PlateProblem:
    """Build the paper's plate problem for ``a = nrows`` rows of nodes.

    ``ncols`` defaults to ``nrows`` (the unit-square meshes of Table 2, where
    the maximum vector length is ≈ a²/3).  The left column is constrained and
    a uniform x-traction is applied on the right edge.

    ``assemble=False`` skips the stiffness assembly entirely (``k=None``,
    matrix-free): the load vector is the same eliminated traction vector
    the assembled path produces, bit for bit.
    """
    ncols = nrows if ncols is None else ncols
    mesh = PlateMesh(nrows=nrows, ncols=ncols, width=width, height=height)
    material = material or ElasticMaterial()
    if assemble:
        k, f = assemble_plate(mesh, material, traction_x, traction_y)
    else:
        k = None
        f_full = edge_traction_loads(mesh, material, traction_x, traction_y)
        free_nodes = mesh.unconstrained_nodes
        free_dofs = np.empty(2 * free_nodes.size, dtype=np.int64)
        free_dofs[0::2] = 2 * free_nodes
        free_dofs[1::2] = 2 * free_nodes + 1
        f = f_full[free_dofs]
    return PlateProblem(mesh=mesh, material=material, k=k, f=f)


def variable_plate_problem(
    nrows: int,
    ncols: int | None = None,
    material: ElasticMaterial | None = None,
    contrast: float = 8.0,
    pattern: str = "graded",
    traction_x: float = 1.0,
    traction_y: float = 0.0,
) -> PlateProblem:
    """The plate with a spatially varying Young's modulus.

    The multicolor ordering depends only on the mesh graph, never on the
    coefficient values, so the heterogeneous plate runs through the
    identical R/B/G machinery — what changes is the spectrum the m-step
    preconditioner has to tame.

    ``pattern``
        ``"graded"`` — stiffness grows linearly from 1 at the constrained
        edge to ``contrast`` at the loaded edge; ``"inclusion"`` — a
        centered circular inclusion (radius 0.25 of the width) ``contrast``
        times stiffer than the surrounding plate.
    """
    require(contrast > 0, "stiffness contrast must be positive")
    require(pattern in ("graded", "inclusion"),
            "pattern must be 'graded' or 'inclusion'")
    ncols = nrows if ncols is None else ncols
    mesh = PlateMesh(nrows=nrows, ncols=ncols)
    material = material or ElasticMaterial()

    coords = mesh.coordinates
    centroids = coords[mesh.triangles].mean(axis=1)  # (n_tri, 2)
    if pattern == "graded":
        x = centroids[:, 0] / mesh.width
        element_scale = 1.0 + (contrast - 1.0) * x
    else:
        center = np.array([0.5 * mesh.width, 0.5 * mesh.height])
        radius = 0.25 * mesh.width
        inside = np.linalg.norm(centroids - center, axis=1) < radius
        element_scale = np.where(inside, contrast, 1.0)

    k, f = assemble_plate(
        mesh, material, traction_x, traction_y, element_scale=element_scale
    )
    return PlateProblem(
        mesh=mesh, material=material, k=k, f=f, element_scale=element_scale
    )


@dataclass(frozen=True)
class PoissonProblem:
    """5-point Laplacian on an ``n × n`` interior grid with red/black colors."""

    n_grid: int
    #: Assembled stiffness, or ``None`` when built with ``assemble=False``.
    k: sp.csr_matrix | None
    f: np.ndarray

    GROUP_LABELS = ("R", "B")

    @property
    def n(self) -> int:
        return self.k.shape[0] if self.k is not None else self.n_grid * self.n_grid

    @cached_property
    def group_of_unknown(self) -> np.ndarray:
        """Red/black color (0/1) of every unknown: ``(i + j) mod 2``."""
        idx = np.arange(self.n)
        i = idx % self.n_grid
        j = idx // self.n_grid
        return ((i + j) % 2).astype(np.int64)

    @property
    def n_groups(self) -> int:
        return 2

    @property
    def group_labels(self) -> tuple[str, ...]:
        return self.GROUP_LABELS

    def direct_solution(self) -> np.ndarray:
        require(self.k is not None,
                "matrix-free problem (assemble=False) has no assembled matrix")
        return sp.linalg.spsolve(self.k.tocsc(), self.f)


@dataclass(frozen=True)
class AnisotropicProblem(PoissonProblem):
    """Anisotropic 5-point stencil ``−ε·u_xx − u_yy`` (red/black colors)."""

    epsilon: float = 1.0


def _grid_rhs(n_grid: int, rhs: str) -> np.ndarray:
    """Right-hand sides shared by the 5-point-stencil problems."""
    if rhs == "ones":
        return np.ones(n_grid * n_grid)
    if rhs == "peak":
        h = 1.0 / (n_grid + 1)
        xs = np.linspace(h, 1.0 - h, n_grid)
        xx, yy = np.meshgrid(xs, xs)
        return np.exp(-50.0 * ((xx - 0.5) ** 2 + (yy - 0.5) ** 2)).ravel()
    raise ValueError(f"unknown rhs kind {rhs!r}")


def _laplacian_1d(n_grid: int) -> sp.csr_matrix:
    main = 2.0 * np.ones(n_grid)
    off = -np.ones(n_grid - 1)
    return sp.diags([off, main, off], [-1, 0, 1], format="csr")


def poisson_problem(
    n_grid: int, rhs: str = "ones", assemble: bool = True
) -> PoissonProblem:
    """Dirichlet Poisson problem ``−Δu = g`` on the unit square.

    ``n_grid × n_grid`` interior points, natural row-major ordering.  The
    matrix is the standard 5-point stencil scaled by ``1/h²`` and is SPD.

    Parameters
    ----------
    n_grid:
        Interior points per side (≥ 2).
    rhs:
        ``"ones"`` for ``g ≡ 1`` or ``"peak"`` for a centered Gaussian bump.
    assemble:
        ``False`` skips the kron assembly (``k=None``, matrix-free for the
        stencil backend).
    """
    require(n_grid >= 2, "need at least a 2×2 interior grid")
    if not assemble:
        return PoissonProblem(n_grid=n_grid, k=None, f=_grid_rhs(n_grid, rhs))
    h = 1.0 / (n_grid + 1)
    t = _laplacian_1d(n_grid)
    eye = sp.identity(n_grid, format="csr")
    k = ((sp.kron(eye, t) + sp.kron(t, eye)) / (h * h)).tocsr()
    return PoissonProblem(n_grid=n_grid, k=k, f=_grid_rhs(n_grid, rhs))


def anisotropic_problem(
    n_grid: int, epsilon: float = 0.1, rhs: str = "ones", assemble: bool = True
) -> AnisotropicProblem:
    """Anisotropic Dirichlet problem ``−ε·u_xx − u_yy = g``.

    The sparsity pattern — and hence the red/black multicolor ordering —
    is exactly the 5-point Laplacian's; only the weights change.  As
    ``ε → 0`` the spectrum of the SSOR-preconditioned operator stretches,
    so parametrized m-step schedules earn much more than they do on the
    isotropic problem — the scenario the registry uses to exercise the
    method off the paper's benign workloads.
    """
    require(n_grid >= 2, "need at least a 2×2 interior grid")
    require(epsilon > 0, "anisotropy ratio must be positive")
    if not assemble:
        return AnisotropicProblem(
            n_grid=n_grid, k=None, f=_grid_rhs(n_grid, rhs), epsilon=epsilon
        )
    h = 1.0 / (n_grid + 1)
    t = _laplacian_1d(n_grid)
    eye = sp.identity(n_grid, format="csr")
    # Fast index is x (idx % n_grid), so kron(eye, t) differences along x.
    k = ((epsilon * sp.kron(eye, t) + sp.kron(t, eye)) / (h * h)).tocsr()
    return AnisotropicProblem(
        n_grid=n_grid, k=k, f=_grid_rhs(n_grid, rhs), epsilon=epsilon
    )
