"""Irregular regions — the paper's concluding open problem, solved.

"A problem still remains in applying the method to irregular regions since
the grid must be colored …"  This module carves irregular domains (an
L-shape, a perforated plate) out of the rectangular grid, assembles the
plane-stress system over the surviving triangles, and colors the *matrix
graph* with the greedy multicoloring of
:func:`repro.multicolor.coloring.greedy_multicolor`.  The downstream
machinery — multicolor ordering, blocked system, Conrad–Wallach m-step
SSOR, PCG — is written for any number of color groups, so the method runs
unchanged; only the closed-form R/B/G rule is given up.

Two colorings are offered:

* ``node`` (default): greedy-color the node adjacency, then split each
  color by displacement component — the direct generalization of the
  paper's six groups, keeping same-node couplings in off-diagonal blocks;
* ``matrix``: greedy-color the stiffness graph at the unknown level.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np
import scipy.sparse as sp

from repro.fem.mesh import PlateMesh
from repro.fem.plane_stress import (
    ElasticMaterial,
    assemble_from_triangles,
)
from repro.multicolor.coloring import greedy_multicolor, validate_groups
from repro.util import require

__all__ = ["IrregularProblem", "l_shaped_problem", "perforated_problem"]


@dataclass(frozen=True)
class IrregularProblem:
    """An irregular-domain plane-stress system with a greedy coloring.

    Satisfies the same protocol as :class:`repro.fem.model_problems
    .PlateProblem` (``k``, ``f``, ``group_of_unknown``, ``group_labels``),
    so :func:`repro.driver.solve_mstep_ssor` and the machines accept it.
    """

    mesh: PlateMesh
    material: ElasticMaterial
    kept_cells: np.ndarray  # boolean (nrows−1, ncols−1)
    active_nodes: np.ndarray  # node indices belonging to ≥1 kept triangle
    free_nodes: np.ndarray  # active and unconstrained
    k: sp.csr_matrix
    f: np.ndarray
    coloring_mode: str

    @property
    def n(self) -> int:
        return self.k.shape[0]

    @cached_property
    def node_of_unknown(self) -> np.ndarray:
        return np.repeat(self.free_nodes, 2)

    @cached_property
    def component_of_unknown(self) -> np.ndarray:
        return np.tile(np.array([0, 1], dtype=np.int64), self.free_nodes.size)

    @cached_property
    def group_of_unknown(self) -> np.ndarray:
        if self.coloring_mode == "matrix":
            return greedy_multicolor(self.k)
        # node mode: color the node adjacency restricted to the domain,
        # then cross with the displacement component.
        node_colors = self._greedy_node_colors()
        local = {int(n): i for i, n in enumerate(self.free_nodes)}
        colors_local = np.array(
            [node_colors[local[int(n)]] for n in self.node_of_unknown]
        )
        return 2 * colors_local + self.component_of_unknown

    def _greedy_node_colors(self) -> np.ndarray:
        """Greedy coloring of the free-node adjacency graph."""
        index = {int(n): i for i, n in enumerate(self.free_nodes)}
        n_local = self.free_nodes.size
        rows, cols = [], []
        for node in self.free_nodes:
            for other in self.mesh.neighbors(int(node)):
                if other in index and self._edge_in_domain(int(node), other):
                    rows.append(index[int(node)])
                    cols.append(index[other])
        adj = sp.csr_matrix(
            (np.ones(len(rows)), (rows, cols)), shape=(n_local, n_local)
        )
        adj = adj + sp.identity(n_local)  # greedy_multicolor needs diagonals
        return greedy_multicolor(adj.tocsr())

    def _edge_in_domain(self, a: int, b: int) -> bool:
        """Whether nodes a, b share a kept triangle (true mesh adjacency)."""
        tri_nodes = self.kept_triangle_nodes
        return (a, b) in tri_nodes

    @cached_property
    def kept_triangle_nodes(self) -> set[tuple[int, int]]:
        pairs: set[tuple[int, int]] = set()
        for tri in self.kept_triangles:
            for i in range(3):
                for j in range(3):
                    if i != j:
                        pairs.add((int(tri[i]), int(tri[j])))
        return pairs

    @cached_property
    def kept_triangles(self) -> np.ndarray:
        mesh = self.mesh
        keep = []
        for index, tri in enumerate(mesh.triangles):
            cell = index // 2
            j, i = divmod(cell, mesh.ncols - 1)
            if self.kept_cells[j, i]:
                keep.append(tri)
        return np.array(keep, dtype=np.int64)

    @cached_property
    def n_groups(self) -> int:
        return int(self.group_of_unknown.max()) + 1

    @property
    def group_labels(self) -> tuple[str, ...]:
        return tuple(f"c{c}" for c in range(self.n_groups))

    def validate(self) -> None:
        """The greedy grouping must be a proper coloring of K's graph."""
        validate_groups(self.k, self.group_of_unknown)

    def direct_solution(self) -> np.ndarray:
        return sp.linalg.spsolve(self.k.tocsc(), self.f)

    def domain_ascii(self) -> str:
        """Map of the domain: '#' active, '.' removed, 'x' constrained."""
        mesh = self.mesh
        active = set(int(n) for n in self.active_nodes)
        constrained = set(int(n) for n in mesh.constrained_nodes)
        rows = []
        for j in reversed(range(mesh.nrows)):
            cells = []
            for i in range(mesh.ncols):
                node = mesh.node_id(i, j)
                if node not in active:
                    cells.append(".")
                elif node in constrained:
                    cells.append("x")
                else:
                    cells.append("#")
            rows.append(" ".join(cells))
        return "\n".join(rows)


def _build(
    mesh: PlateMesh,
    kept_cells: np.ndarray,
    material: ElasticMaterial,
    traction_x: float,
    coloring: str,
) -> IrregularProblem:
    require(coloring in ("node", "matrix"), "coloring must be 'node' or 'matrix'")
    require(
        kept_cells.shape == (mesh.nrows - 1, mesh.ncols - 1),
        "kept_cells must be (nrows−1, ncols−1)",
    )
    require(bool(kept_cells.any()), "domain is empty")

    # Triangles of kept cells; active nodes = union of their vertices.
    tris = []
    for index, tri in enumerate(mesh.triangles):
        cell = index // 2
        j, i = divmod(cell, mesh.ncols - 1)
        if kept_cells[j, i]:
            tris.append(tri)
    tris = np.array(tris, dtype=np.int64)
    active_nodes = np.unique(tris)

    constrained = set(int(n) for n in mesh.constrained_nodes)
    active_set = set(int(n) for n in active_nodes)
    require(
        any(n in active_set for n in constrained),
        "domain must touch the constrained edge (else K is singular)",
    )
    free_nodes = np.array(
        [n for n in active_nodes if int(n) not in constrained], dtype=np.int64
    )

    k_full = assemble_from_triangles(mesh.coordinates, tris, material)

    # Loads: uniform x-traction on surviving right-edge segments.
    f_full = np.zeros(2 * mesh.n_nodes)
    right = mesh.loaded_nodes
    coords = mesh.coordinates
    edge_pairs = set()
    for tri in tris:
        tri_set = set(int(t) for t in tri)
        on_edge = sorted(tri_set & set(int(n) for n in right))
        if len(on_edge) == 2:
            edge_pairs.add(tuple(on_edge))
    for lo, hi in edge_pairs:
        length = float(np.linalg.norm(coords[hi] - coords[lo]))
        half = 0.5 * material.thickness * length
        f_full[2 * lo] += half * traction_x
        f_full[2 * hi] += half * traction_x

    free_dofs = np.empty(2 * free_nodes.size, dtype=np.int64)
    free_dofs[0::2] = 2 * free_nodes
    free_dofs[1::2] = 2 * free_nodes + 1
    k = k_full[free_dofs][:, free_dofs].tocsr()
    k.eliminate_zeros()
    f = f_full[free_dofs]

    problem = IrregularProblem(
        mesh=mesh,
        material=material,
        kept_cells=kept_cells,
        active_nodes=active_nodes,
        free_nodes=free_nodes,
        k=k,
        f=f,
        coloring_mode=coloring,
    )
    problem.validate()
    return problem


def l_shaped_problem(
    a: int,
    notch_fraction: float = 0.5,
    material: ElasticMaterial | None = None,
    traction_x: float = 1.0,
    coloring: str = "node",
) -> IrregularProblem:
    """An L-shaped plate: the upper-right quadrant of cells removed.

    ``notch_fraction`` is the removed fraction of each direction (0.5 cuts
    away a quarter of the area).  The left edge stays constrained and the
    surviving right-edge segments stay loaded.
    """
    require(a >= 4, "need at least a 4×4 grid for a visible notch")
    require(0.0 < notch_fraction < 1.0, "notch_fraction must be in (0, 1)")
    mesh = PlateMesh(a, a)
    kept = np.ones((a - 1, a - 1), dtype=bool)
    cut_j = int(round((a - 1) * (1.0 - notch_fraction)))
    cut_i = int(round((a - 1) * (1.0 - notch_fraction)))
    kept[cut_j:, cut_i:] = False
    material = material or ElasticMaterial()
    return _build(mesh, kept, material, traction_x, coloring)


def perforated_problem(
    a: int,
    hole_center: tuple[float, float] = (0.5, 0.5),
    hole_radius: float = 0.2,
    material: ElasticMaterial | None = None,
    traction_x: float = 1.0,
    coloring: str = "node",
) -> IrregularProblem:
    """A plate with a circular hole (cells whose centers fall inside it)."""
    require(a >= 5, "need at least a 5×5 grid for a visible hole")
    mesh = PlateMesh(a, a)
    kept = np.ones((a - 1, a - 1), dtype=bool)
    h = 1.0 / (a - 1)
    for j in range(a - 1):
        for i in range(a - 1):
            cx = (i + 0.5) * h
            cy = (j + 0.5) * h
            if (cx - hole_center[0]) ** 2 + (cy - hole_center[1]) ** 2 < hole_radius**2:
                kept[j, i] = False
    material = material or ElasticMaterial()
    return _build(mesh, kept, material, traction_x, coloring)
