"""Grid-point stencil extraction (Figure 2).

The paper's Figure 2 shows the coupling pattern of one node under the
'/'-diagonal triangulation: the node itself plus its six mesh neighbors
(W, E, S, N, NW, SE), each carrying the two displacement unknowns ``(u, v)``,
for at most 14 nonzero stiffness entries per row.  These helpers recover that
stencil from an *assembled* matrix so tests and the Figure-2 bench verify the
claim on the real operator rather than on the mesh combinatorics alone.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.fem.mesh import NEIGHBOR_OFFSETS, PlateMesh

__all__ = ["node_stencil", "stencil_summary", "max_row_nonzeros"]


def node_stencil(mesh: PlateMesh, k: sp.spmatrix, node: int) -> dict[tuple[int, int], int]:
    """Coupling of ``node``'s u-row, grouped by neighbor grid offset.

    Returns a mapping ``(di, dj) → count of nonzero columns`` where
    ``(di, dj)`` is the neighbor's grid offset from ``node`` (``(0, 0)`` is
    the node itself).  Constrained neighbors do not appear (their columns
    were eliminated).
    """
    row_index = mesh.dof_index(node, 0)
    if row_index < 0:
        raise ValueError("node is constrained; its equations were eliminated")
    k = k.tocsr()
    row = k.getrow(row_index)
    i0, j0 = mesh.node_ij(node)
    out: dict[tuple[int, int], int] = {}
    for col in row.indices[np.abs(row.data) > 0]:
        neighbor = int(mesh.dof_node[col])
        i1, j1 = mesh.node_ij(neighbor)
        key = (i1 - i0, j1 - j0)
        out[key] = out.get(key, 0) + 1
    return out


def max_row_nonzeros(k: sp.spmatrix) -> int:
    """Largest number of structurally nonzero entries in any row."""
    csr = k.tocsr()
    return int(np.diff(csr.indptr).max()) if csr.shape[0] else 0


def stencil_summary(mesh: PlateMesh, k: sp.spmatrix, node: int) -> str:
    """ASCII rendition of Figure 2 for ``node``.

    Marks each grid offset that the node's u-equation couples to; a fully
    interior node shows the 7-point pattern (self + 6 neighbors).
    """
    stencil = node_stencil(mesh, k, node)
    legal = set(NEIGHBOR_OFFSETS) | {(0, 0)}
    unexpected = set(stencil) - legal
    lines = []
    for dj in (1, 0, -1):
        cells = []
        for di in (-1, 0, 1):
            if (di, dj) in stencil:
                cells.append("(u,v)")
            else:
                cells.append("  .  ")
        lines.append(" ".join(cells))
    if unexpected:
        lines.append(f"unexpected couplings: {sorted(unexpected)}")
    total = sum(stencil.values())
    lines.append(f"nonzeros in u-row: {total} (paper bound: 14)")
    return "\n".join(lines)
