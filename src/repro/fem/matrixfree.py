"""Stencil builders: the regular-mesh operators without assembly.

Each regular-mesh scenario's stiffness matrix is, in the natural ordering,
a small set of constant-offset diagonals — the grid stencil of the
paper's Figure 2.  These builders produce the
:class:`~repro.kernels.stencil.StencilOperator` for a problem directly
from the discretization, never touching ``scipy.sparse``:

* :func:`poisson_stencil` / :func:`anisotropic_stencil` replicate the
  kron-assembly arithmetic term by term (``(2+2)/h²`` diagonals,
  ``−1/h²`` couplings), so the stencil coefficients are **bitwise equal**
  to the assembled matrix entries;
* :func:`plate_stencil` accumulates the batched CST element stiffnesses
  (the exact per-element arithmetic of assembly, on the actual
  ``linspace`` mesh coordinates) over the cell grid by window adds, in
  the same per-entry contribution order as the deterministic assembly
  summation — so plate coefficients are **bitwise equal** to the
  assembled matrix entries too;
* :func:`stencil_operator` dispatches on the problem type; and
* :func:`stencil_interval` bounds the SSOR-preconditioned spectrum by
  deterministic power iteration when no assembled matrix exists to feed
  the exact spectral routine.
"""

from __future__ import annotations

import numpy as np

from repro.fem.mesh import PlateMesh
from repro.fem.model_problems import (
    AnisotropicProblem,
    PlateProblem,
    PoissonProblem,
)
from repro.fem.plane_stress import ElasticMaterial, element_stiffness_batch
from repro.kernels.stencil import StencilOperator, StencilSSOR
from repro.util import require

__all__ = [
    "poisson_stencil",
    "anisotropic_stencil",
    "plate_stencil",
    "stencil_operator",
    "stencil_interval",
    "STENCIL_SCENARIOS",
]

#: Registered scenario names the stencil backend can serve.
STENCIL_SCENARIOS = ("plate", "stretched-plate", "poisson", "anisotropic")


def _grid_groups(n_grid: int) -> np.ndarray:
    idx = np.arange(n_grid * n_grid)
    return ((idx % n_grid + idx // n_grid) % 2).astype(np.int64)


def anisotropic_stencil(n_grid: int, epsilon: float = 1.0) -> StencilOperator:
    """5-point stencil of ``−ε·u_xx − u_yy`` with red/black coloring.

    The coefficient arithmetic mirrors the kron assembly of
    :func:`repro.fem.model_problems.anisotropic_problem` exactly —
    ``(ε·2 + 2)/h²`` on the diagonal, ``ε·(−1)/h²`` along x, ``(−1)/h²``
    along y — so every stored value is bitwise equal to the assembled
    CSR entry.  ``ε = 1`` is the isotropic Laplacian.
    """
    require(n_grid >= 2, "need at least a 2×2 interior grid")
    require(epsilon > 0, "anisotropy ratio must be positive")
    g = n_grid
    n = g * g
    h = 1.0 / (g + 1)
    # scipy spells `csr / (h*h)` as multiplication by the reciprocal;
    # mirror it so the coefficients stay bitwise equal to assembly.
    inv_hh = 1.0 / (h * h)
    diag = np.full(n, (epsilon * 2.0 + 2.0) * inv_hh)
    off_x = np.full(n, (epsilon * (-1.0)) * inv_hh)
    off_y = np.full(n, (-1.0) * inv_hh)
    # The ±1 offsets wrap across grid rows; mask the wrap positions (the
    # ±g offsets only run out of range, which the operator trims itself).
    i = np.arange(n) % g
    xm = off_x.copy()
    xm[i == 0] = 0.0
    xp = off_x.copy()
    xp[i == g - 1] = 0.0
    return StencilOperator(
        offsets=(-g, -1, 0, 1, g),
        values=np.stack([off_y, xm, diag, xp, off_y]),
        groups=_grid_groups(g),
        group_labels=PoissonProblem.GROUP_LABELS,
        copy=False,  # the stack above is ours to hand over
    )


def poisson_stencil(n_grid: int) -> StencilOperator:
    """5-point Laplacian stencil (``ε = 1``), bitwise-equal to assembly."""
    return anisotropic_stencil(n_grid, epsilon=1.0)


# Local vertex grid offsets of the two triangle orientations per cell —
# must match PlateMesh.triangles: lower (SW, SE, NW), upper (SE, NE, NW).
_LOWER_VERTS = ((0, 0), (1, 0), (0, 1))
_UPPER_VERTS = ((1, 0), (1, 1), (0, 1))

#: ``(orientation, local_vertex)`` pairs sorted by ``(−pa[1], −pa[0],
#: orientation)``, ``pa`` the vertex's cell-local grid offset.  A node
#: pair's contributing elements sit at cells ``node − pa``, and assembly
#: sums contributions in element order — cells row-major, lower triangle
#: before upper — which is exactly ascending this key.  Accumulating the
#: windows in this order (within each ascending cell-row chunk) makes
#: every ≥3-term coefficient sum associate identically to the
#: deterministic assembly summation; 2-term sums commute bitwise anyway.
_ACC_ORDER = ((1, 1), (0, 2), (1, 2), (0, 1), (1, 0), (0, 0))


def plate_stencil(
    mesh: PlateMesh,
    material: ElasticMaterial | None = None,
    chunk_rows: int = 64,
) -> StencilOperator:
    """The plane-stress plate stiffness as ≤21 dof-level diagonals.

    Element stiffnesses come from the same batched einsum assembly uses
    (:func:`~repro.fem.plane_stress.element_stiffness_batch`, on the
    actual mesh coordinates), and the window accumulation follows
    ``_ACC_ORDER`` so every coefficient sums its element contributions in
    assembly's deterministic triangle order — the stored diagonals are
    **bitwise equal** to the assembled CSR entries.  Constrained-column
    couplings are zeroed exactly as elimination drops them.  Within each
    color group a dof-level offset addresses one node offset, so the
    multicolor sweep structure carries over unchanged.  ``chunk_rows``
    bounds the per-chunk element batch (cell rows per pass); any chunking
    yields the same bits.
    """
    material = material or ElasticMaterial()
    nrows, ncols = mesh.nrows, mesh.ncols
    require(ncols >= 3, "stencil plate needs at least 3 node columns")
    coords = mesh.coordinates
    cells_x, cells_y = ncols - 1, nrows - 1
    verts_by_orient = (_LOWER_VERTS, _UPPER_VERTS)

    # Node-level accumulation: coef[(di, dj)][j, i, α, β] is the stiffness
    # coupling of node (i, j)'s dof α to node (i+di, j+dj)'s dof β summed
    # over every element containing both — zero wherever no cell covers
    # the pair, which is exactly the boundary tapering assembly produces.
    coef: dict[tuple[int, int], np.ndarray] = {}
    cell_i = np.arange(cells_x)
    for r0 in range(0, cells_y, max(chunk_rows, 1)):
        r1 = min(r0 + max(chunk_rows, 1), cells_y)
        sw = (np.arange(r0, r1)[:, None] * ncols + cell_i[None, :]).ravel()
        kes = []
        for verts in verts_by_orient:
            tri = np.stack([sw + dj * ncols + di for di, dj in verts], axis=1)
            kes.append(element_stiffness_batch(coords, tri, material))
        for orient, a in _ACC_ORDER:
            verts = verts_by_orient[orient]
            ke = kes[orient]
            pa = verts[a]
            for b in range(3):
                pb = verts[b]
                delta = (pb[0] - pa[0], pb[1] - pa[1])
                arr = coef.setdefault(
                    delta, np.zeros((nrows, ncols, 2, 2))
                )
                block = ke[:, 2 * a : 2 * a + 2, 2 * b : 2 * b + 2]
                arr[
                    pa[1] + r0 : pa[1] + r1, pa[0] : pa[0] + cells_x
                ] += block.reshape(r1 - r0, cells_x, 2, 2)

    # Map node offsets to dof-level flat diagonals over the eliminated
    # system: unconstrained nodes form an (nrows × b) grid, b = ncols−1,
    # natural dof = 2·(j·b + (i−1)) + α, so node offset (di, dj) with dof
    # pair (α, β) lands on flat offset 2·(dj·b + di) + (β − α).  Flat
    # wrap-arounds only occur where the 2-D target leaves the grid — and
    # there the accumulated coefficient is already zero.
    b = ncols - 1
    n = 2 * nrows * b
    vals_by_offset: dict[int, np.ndarray] = {}
    for (di, dj), arr in coef.items():
        node_vals = arr[:, 1:, :, :]
        if di < 0:
            node_vals = node_vals.copy()
            node_vals[:, :(-di), :, :] = 0.0  # target column is constrained
        for alpha in (0, 1):
            for beta in (0, 1):
                offset = 2 * (dj * b + di) + (beta - alpha)
                v = vals_by_offset.setdefault(offset, np.zeros(n))
                v[alpha::2] += node_vals[:, :, alpha, beta].ravel()

    offsets = sorted(o for o, v in vals_by_offset.items() if np.any(v) or o == 0)
    values = np.stack([vals_by_offset[o] for o in offsets])
    groups = 2 * mesh.node_colors[mesh.dof_node] + mesh.dof_component
    return StencilOperator(
        offsets=offsets,
        values=values,
        groups=groups,
        group_labels=PlateProblem.GROUP_LABELS,
        copy=False,  # the stack above is ours to hand over
    )


def stencil_operator(problem) -> StencilOperator:
    """The matrix-free operator for a regular-mesh problem.

    Supports the plate (homogeneous material), poisson and anisotropic
    problems; raises for anything else (irregular regions have no
    constant-offset structure, variable-coefficient plates no constant
    element stiffness).
    """
    if isinstance(problem, AnisotropicProblem):
        return anisotropic_stencil(problem.n_grid, problem.epsilon)
    if isinstance(problem, PoissonProblem):
        return poisson_stencil(problem.n_grid)
    if isinstance(problem, PlateProblem):
        require(
            problem.element_scale is None,
            "the stencil backend needs a constant element stiffness; "
            "variable-coefficient plates must use the assembled (CSR) path",
        )
        return plate_stencil(problem.mesh, problem.material)
    raise ValueError(
        f"no stencil operator for {type(problem).__name__}; the stencil "
        f"backend serves the regular-mesh scenarios {STENCIL_SCENARIOS}"
    )


def _rayleigh_power(apply_fn, v0: np.ndarray, iterations: int) -> float:
    """Dominant-eigenvalue estimate by power iteration (deterministic).

    ``apply_fn`` may return a borrowed buffer it will overwrite on the
    next call — the loop consumes ``w`` before re-applying, renormalizing
    into ``v`` in place, so the whole iteration allocates nothing.  At
    large ``n`` this runs exactly at the pipeline's peak-memory point,
    the metric the matrix-free path exists to win.
    """
    v = v0 / float(np.linalg.norm(v0))
    lam = 0.0
    for _ in range(iterations):
        w = apply_fn(v)
        lam = float(v @ w)
        norm = float(np.linalg.norm(w))
        if norm == 0.0:
            break
        np.divide(w, norm, out=v)
    return lam


def stencil_interval(
    operator: StencilOperator, iterations: int = 80, safety: float = 0.05
) -> tuple[float, float]:
    """``[λ₁, λ_n]`` bounds for ``P⁻¹K`` under the ω=1 SSOR splitting.

    The assembled path measures the spectrum exactly
    (:func:`repro.driver.ssor_interval`); without a matrix this runs
    deterministic power iteration on ``P⁻¹K`` (largest) and on the
    shifted complement ``c·I − P⁻¹K`` (smallest), widening both ends by
    ``safety``.  Least-squares coefficient fitting only needs an
    enclosing interval, so modest accuracy suffices.
    """
    ssor = StencilSSOR(operator, np.ones(1))
    n = operator.n
    kv = np.empty(n)

    def preconditioned(v: np.ndarray) -> np.ndarray:
        # Borrowed buffer out (the sweep's pool), per the power-loop
        # contract above: no per-iteration copies.
        operator.matvec_into(v, kv)
        return ssor.apply(kv)

    def shifted_complement(v: np.ndarray) -> np.ndarray:
        p = preconditioned(v)  # p is pooled; kv is free again after this
        np.multiply(v, hi, out=kv)
        np.subtract(kv, p, out=kv)
        return kv

    hi = _rayleigh_power(preconditioned, np.ones(n), iterations)
    require(hi > 0, "power iteration found a non-positive dominant eigenvalue")
    hi *= 1.0 + safety
    shifted = _rayleigh_power(
        shifted_complement, np.cos(np.arange(n, dtype=float)), iterations
    )
    lo = (hi - shifted) * (1.0 - safety)
    lo = max(lo, np.finfo(float).tiny)
    return (float(lo), float(hi))
