"""Condition-number-versus-m studies.

Adams (1982), cited throughout Section 2, proves for the SSOR splitting
that κ(K̂) decreases as the number of preconditioner steps m increases, but
that the *maximum ratio* κ(K̂₁)/κ(K̂_m) is m — so doubling the work can at
best halve the condition number, and (since CG iterations scale like √κ)
unparametrized steps eventually stop paying for themselves.  Section 4's
results verify this.  :func:`condition_study` computes the exact spectra
so benches and tests can exhibit both the decrease and the bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.polynomial import neumann_coefficients
from repro.core.spectral import (
    condition_number,
    full_splitting_spectrum,
    preconditioned_spectrum,
)
from repro.core.splittings import Splitting
from repro.util import require

__all__ = ["ConditionStudy", "condition_study"]


@dataclass(frozen=True)
class ConditionStudy:
    """κ(M_m⁻¹K) for m = 1…m_max, plus the underlying splitting spectrum."""

    splitting_name: str
    splitting_eigenvalues: np.ndarray
    kappas: dict[int, float]  # m → κ(M_m⁻¹K), unparametrized
    kappa_k: float  # κ(K) itself

    @property
    def m_max(self) -> int:
        return max(self.kappas)

    def ratio(self, m: int) -> float:
        """κ(K̂₁)/κ(K̂_m) — Adams 1982 bounds this by m."""
        return self.kappas[1] / self.kappas[m]

    def monotone_decreasing(self) -> bool:
        ms = sorted(self.kappas)
        values = [self.kappas[m] for m in ms]
        return all(b <= a * (1 + 1e-12) for a, b in zip(values, values[1:]))

    def bound_satisfied(self) -> bool:
        return all(self.ratio(m) <= m + 1e-9 for m in self.kappas)

    def expected_iteration_gain(self, m: int) -> float:
        """√(κ₁/κ_m): the CG-theory prediction of the iteration reduction."""
        return float(np.sqrt(self.ratio(m)))


def condition_study(
    splitting: Splitting,
    m_max: int = 8,
    coefficients_for=None,
) -> ConditionStudy:
    """Exact κ(M_m⁻¹K) for m = 1…m_max on a (small) problem.

    ``coefficients_for(m)`` optionally overrides the all-ones coefficients
    (e.g. with a least-squares parametrization) — the κ values then describe
    the parametrized method instead.
    """
    require(m_max >= 1, "m_max must be at least 1")
    eigs = full_splitting_spectrum(splitting)
    k_dense = splitting.k.toarray()
    kappa_k = condition_number(np.linalg.eigvalsh(k_dense))
    kappas = {}
    for m in range(1, m_max + 1):
        coeffs = (
            neumann_coefficients(m) if coefficients_for is None else coefficients_for(m)
        )
        mapped = preconditioned_spectrum(eigs, coeffs)
        kappas[m] = condition_number(mapped)
    return ConditionStudy(
        splitting_name=splitting.name,
        splitting_eigenvalues=eigs,
        kappas=kappas,
        kappa_k=kappa_k,
    )
