"""The execution-time model of Section 4.

The paper models the m-step method's time as

```
T_m = (A + m·B) · N_m                                    (4.1)
```

with ``A`` the cost of one outer conjugate-gradient iteration, ``B`` the
cost of one preconditioner step, and ``N_m`` the iteration count.  Assuming
``N_{m+1} < N_m``, taking m+1 steps beats m steps whenever either

```
(1)  (m+1)·N_{m+1} − m·N_m < 0          (fewer total inner loops), or
(2)  B/A < (N_m − N_{m+1}) / ((m+1)·N_{m+1} − m·N_m)      (4.2)
```

— inequality (2) applying when its denominator is positive.  The paper
evaluates (2) at m = 9 for the a = 41, 62, 80 meshes to explain why ten
steps pay off only on the largest problem.

:class:`PerformanceModel` packages measured (A, B); :func:`inequality_42`
evaluates the decision at one m; :func:`optimal_m` scans a measured
``N_m`` profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import require

__all__ = [
    "PerformanceModel",
    "Inequality42",
    "inequality_42",
    "optimal_m",
    "effective_optimal_m",
    "fit_iteration_model",
]


@dataclass(frozen=True)
class PerformanceModel:
    """Measured per-iteration costs: ``T_m = (A + m·B)·N_m``."""

    a: float  # one outer CG iteration
    b: float  # one preconditioner step

    def __post_init__(self) -> None:
        require(self.a > 0, "A must be positive")
        require(self.b >= 0, "B must be non-negative")

    @property
    def b_over_a(self) -> float:
        return self.b / self.a

    def predicted_time(self, m: int, n_m: float) -> float:
        """(4.1) for a given iteration count."""
        require(m >= 0, "m must be non-negative")
        return (self.a + m * self.b) * n_m


@dataclass(frozen=True)
class Inequality42:
    """The (4.2) decision at one m: should we take m+1 steps instead?"""

    m: int
    n_m: int
    n_m_plus_1: int
    b_over_a: float
    condition_1: bool
    threshold: float  # right side of inequality (2); inf when (1) already holds
    beneficial: bool

    def sides(self) -> tuple[float, float]:
        """(left, right) of inequality (2) — the pairs the paper prints."""
        return self.b_over_a, self.threshold


def inequality_42(
    m: int, n_m: int, n_m_plus_1: int, model: PerformanceModel
) -> Inequality42:
    """Evaluate (4.2): is m+1 steps better than m steps?"""
    require(m >= 0, "m must be non-negative")
    require(n_m > 0 and n_m_plus_1 > 0, "iteration counts must be positive")
    inner_loops_delta = (m + 1) * n_m_plus_1 - m * n_m
    condition_1 = inner_loops_delta < 0
    if condition_1:
        threshold = float("inf")
        beneficial = True
    elif inner_loops_delta == 0:
        # Equal inner loops: m+1 trades one outer iteration structure for
        # another; beneficial iff it saves outer iterations at all.
        threshold = float("inf") if n_m_plus_1 < n_m else 0.0
        beneficial = n_m_plus_1 < n_m
    else:
        threshold = (n_m - n_m_plus_1) / inner_loops_delta
        beneficial = model.b_over_a < threshold
    return Inequality42(
        m=m,
        n_m=n_m,
        n_m_plus_1=n_m_plus_1,
        b_over_a=model.b_over_a,
        condition_1=condition_1,
        threshold=threshold,
        beneficial=beneficial,
    )


def optimal_m(iteration_counts: dict[int, int], model: PerformanceModel) -> int:
    """The m minimizing (4.1) over a measured ``m → N_m`` profile."""
    require(len(iteration_counts) > 0, "need at least one measurement")
    times = {
        m: model.predicted_time(m, n_m) for m, n_m in iteration_counts.items()
    }
    return min(times, key=times.__getitem__)


def effective_optimal_m(times: dict[int, float], rel_tol: float = 0.02) -> int:
    """Smallest m whose time is within ``rel_tol`` of the minimum.

    The T_m curves of Table 2 are nearly flat around their minimum (the
    paper's own a = 20 column has 0.347/0.348/0.350 s at 5P/6P/4P), so the
    argmin is noise-sensitive; this plateau-tolerant version is the robust
    statistic for "how many steps are worth taking".
    """
    require(len(times) > 0, "need at least one measurement")
    require(rel_tol >= 0, "tolerance must be non-negative")
    t_min = min(times.values())
    return min(m for m, t in times.items() if t <= (1.0 + rel_tol) * t_min)


def fit_iteration_model(
    iteration_counts: dict[int, int]
) -> tuple[float, float]:
    """Fit ``N_m ≈ c / sqrt(1 − (1−μ̄)^m)``-style decay as ``N_m ≈ c·m^(−p)``.

    The paper wishes ``N_m`` "could be expressed as a function of m"; a
    power law is the pragmatic stand-in that lets :func:`optimal_m` be
    extrapolated beyond measured m.  Returns ``(c, p)`` for
    ``N_m ≈ c·m^{−p}`` fitted on m ≥ 1 by log-log least squares.
    """
    ms = np.array([m for m in sorted(iteration_counts) if m >= 1], dtype=float)
    require(ms.size >= 2, "need at least two m ≥ 1 measurements")
    ns = np.array([iteration_counts[int(m)] for m in ms], dtype=float)
    coeffs = np.polyfit(np.log(ms), np.log(ns), 1)
    p = -float(coeffs[0])
    c = float(np.exp(coeffs[1]))
    return c, p
