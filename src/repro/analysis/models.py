"""The execution-time model of Section 4.

The paper models the m-step method's time as

```
T_m = (A + m·B) · N_m                                    (4.1)
```

with ``A`` the cost of one outer conjugate-gradient iteration, ``B`` the
cost of one preconditioner step, and ``N_m`` the iteration count.  Assuming
``N_{m+1} < N_m``, taking m+1 steps beats m steps whenever either

```
(1)  (m+1)·N_{m+1} − m·N_m < 0          (fewer total inner loops), or
(2)  B/A < (N_m − N_{m+1}) / ((m+1)·N_{m+1} − m·N_m)      (4.2)
```

— inequality (2) applying when its denominator is positive.  The paper
evaluates (2) at m = 9 for the a = 41, 62, 80 meshes to explain why ten
steps pay off only on the largest problem.

:class:`PerformanceModel` packages measured (A, B); :func:`inequality_42`
evaluates the decision at one m; :func:`optimal_m` scans a measured
``N_m`` profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import require

__all__ = [
    "PerformanceModel",
    "Inequality42",
    "inequality_42",
    "optimal_m",
    "effective_optimal_m",
    "fit_iteration_model",
]


@dataclass(frozen=True)
class PerformanceModel:
    """Measured per-iteration costs: ``T_m = (A + m·B)·N_m``.

    The block-width extension (PR 3): on the simulated machines one
    preconditioner step over an ``(n, width)`` block of right-hand sides
    costs less than ``width`` separate steps — the fixed per-step work
    (pipeline startups on the CYBER, per-color-phase setup and per-record
    link latency on the Finite Element Machine) is paid once per
    color-block operation.  ``b_marginal`` is the cost of each
    *additional* right-hand side inside a step, so

        ``step_cost(width) = b + (width − 1)·b_marginal``

    with ``b_marginal = b`` (no amortization) when not given.  All
    width-1 behavior — ``predicted_time(m, n_m)``, ``b_over_a`` — is
    unchanged.
    """

    a: float  # one outer CG iteration
    b: float  # one preconditioner step (width 1)
    b_marginal: float | None = None  # per-extra-RHS step cost inside a block

    def __post_init__(self) -> None:
        require(self.a > 0, "A must be positive")
        require(self.b >= 0, "B must be non-negative")
        require(
            self.b_marginal is None or 0 <= self.b_marginal <= self.b,
            "the marginal step cost must lie in [0, B]",
        )

    @classmethod
    def from_fem_machine(cls, machine, m: int = 1) -> "PerformanceModel":
        """Calibrate (A, B, B_marginal) from a simulated machine.

        ``machine`` is a :class:`~repro.machines.FiniteElementMachine`
        (anything with ``iteration_costs`` and
        ``preconditioner_block_seconds``).  The marginal cost is the exact
        width-derivative of the machine's block cost model — one extra
        right-hand side's flops and link words, with the per-phase setup
        and per-record latency already paid.
        """
        a, b = machine.iteration_costs(m)
        b_width2 = machine.preconditioner_block_seconds(1, 2)
        return cls(a=a, b=b, b_marginal=b_width2 - b)

    @classmethod
    def from_cyber_machine(cls, machine) -> "PerformanceModel":
        """Calibrate (A, B, B_marginal) from the CYBER vector simulator.

        The vector-machine counterpart of :meth:`from_fem_machine`:
        ``machine`` is a :class:`~repro.machines.CyberMachine`, whose
        ``iteration_costs`` charge the (4.1) quantities on the pipeline
        clock — ``A`` dominated by the partial-sum inner products, ``B``
        by the per-diagonal multiply-add streams of Algorithm 2 (both
        structural constants, hence no ``m`` argument here).  The
        marginal cost is the width-derivative of the batched block
        application (one extra right-hand side streams through already-
        started pipes), clipped into the model's ``[0, B]`` domain.
        """
        a, b = machine.iteration_costs()
        marginal = machine.preconditioner_block_seconds(
            1, 2
        ) - machine.preconditioner_block_seconds(1, 1)
        return cls(a=a, b=b, b_marginal=min(max(marginal, 0.0), b))

    @property
    def b_over_a(self) -> float:
        return self.b / self.a

    @property
    def amortizes(self) -> bool:
        """Whether the model carries block-width (batched-RHS) information."""
        return self.b_marginal is not None and self.b_marginal < self.b

    @staticmethod
    def shard_width(width: int, shards: int = 1) -> int:
        """Columns carried by the widest shard when a ``width``-wide block
        is split over ``shards`` parallel workers (contiguous groups)."""
        require(width >= 1, "width must be at least 1")
        require(shards >= 1, "shards must be at least 1")
        return -(-width // min(shards, width))  # ceil

    def step_cost(self, width: int = 1, shards: int = 1) -> float:
        """One preconditioner step on an ``(n, width)`` block.

        ``shards > 1`` prices the step when the block's column groups run
        on that many parallel workers (:mod:`repro.parallel`): wall-clock
        is the *widest shard's* step — ``b + (⌈width/shards⌉ − 1)·
        b_marginal`` — since the groups advance concurrently.
        """
        require(width >= 1, "width must be at least 1")
        width = self.shard_width(width, shards)
        if width == 1:
            return self.b
        marginal = self.b_marginal if self.b_marginal is not None else self.b
        return self.b + (width - 1) * marginal

    def b_over_a_at(self, width: int = 1, shards: int = 1) -> float:
        """Effective per-right-hand-side ``B/A`` for a width-wide block.

        The outer iteration's A is charged per right-hand side while the
        preconditioner step amortizes, so batching moves the (4.2)
        decision toward more steps.  ``shards > 1`` prices the sharded
        execution: each worker's block is narrower, so the per-RHS
        amortization (and the pull toward larger m) weakens while the
        wall-clock drops.
        """
        width_per_shard = self.shard_width(width, shards)
        return (self.step_cost(width, shards) / width_per_shard) / self.a

    def predicted_time(
        self, m: int, n_m: float, width: int = 1, shards: int = 1
    ) -> float:
        """(4.1) for a given iteration count.

        ``width > 1`` prices a batch of ``width`` right-hand sides
        advancing in lockstep: ``(A·width + m·step_cost(width))·N_m``.
        ``width = 1`` is exactly the paper's model.  ``shards > 1``
        prices the block sharded over that many parallel workers — the
        wall-clock of the widest shard,
        ``(A·⌈width/shards⌉ + m·step_cost(width, shards))·N_m``.
        """
        require(m >= 0, "m must be non-negative")
        if width == 1:
            return (self.a + m * self.b) * n_m
        width_per_shard = self.shard_width(width, shards)
        return (
            self.a * width_per_shard + m * self.step_cost(width, shards)
        ) * n_m

    def preconditioner_block_time(self, m: int, width: int = 1) -> float:
        """Modeled seconds of one batched m-step application.

        Mirrors :meth:`repro.machines.FiniteElementMachine
        .preconditioner_block_seconds` — the test-suite pins the two to
        each other across widths when the model is machine-calibrated.
        """
        require(m >= 1, "m must be at least 1")
        return m * self.step_cost(width)


@dataclass(frozen=True)
class Inequality42:
    """The (4.2) decision at one m: should we take m+1 steps instead?"""

    m: int
    n_m: int
    n_m_plus_1: int
    b_over_a: float
    condition_1: bool
    threshold: float  # right side of inequality (2); inf when (1) already holds
    beneficial: bool
    width: int = 1  # right-hand-side block width the decision was priced at

    def sides(self) -> tuple[float, float]:
        """(left, right) of inequality (2) — the pairs the paper prints."""
        return self.b_over_a, self.threshold


def inequality_42(
    m: int, n_m: int, n_m_plus_1: int, model: PerformanceModel, width: int = 1
) -> Inequality42:
    """Evaluate (4.2): is m+1 steps better than m steps?

    ``width > 1`` evaluates the decision for a batch of ``width``
    right-hand sides advancing together: the effective per-RHS step cost
    is ``step_cost(width)/width`` (the fixed per-step setup amortizes
    across the block — :meth:`PerformanceModel.b_over_a_at`), so batching
    lowers ``B/A`` and pushes the break-even toward larger m.
    """
    require(m >= 0, "m must be non-negative")
    require(n_m > 0 and n_m_plus_1 > 0, "iteration counts must be positive")
    b_over_a = model.b_over_a_at(width)
    inner_loops_delta = (m + 1) * n_m_plus_1 - m * n_m
    condition_1 = inner_loops_delta < 0
    if condition_1:
        threshold = float("inf")
        beneficial = True
    elif inner_loops_delta == 0:
        # Equal inner loops: m+1 trades one outer iteration structure for
        # another; beneficial iff it saves outer iterations at all.
        threshold = float("inf") if n_m_plus_1 < n_m else 0.0
        beneficial = n_m_plus_1 < n_m
    else:
        threshold = (n_m - n_m_plus_1) / inner_loops_delta
        beneficial = b_over_a < threshold
    return Inequality42(
        m=m,
        n_m=n_m,
        n_m_plus_1=n_m_plus_1,
        b_over_a=b_over_a,
        condition_1=condition_1,
        threshold=threshold,
        beneficial=beneficial,
        width=width,
    )


def optimal_m(iteration_counts: dict[int, int], model: PerformanceModel) -> int:
    """The m minimizing (4.1) over a measured ``m → N_m`` profile."""
    require(len(iteration_counts) > 0, "need at least one measurement")
    times = {
        m: model.predicted_time(m, n_m) for m, n_m in iteration_counts.items()
    }
    return min(times, key=times.__getitem__)


def effective_optimal_m(times: dict[int, float], rel_tol: float = 0.02) -> int:
    """Smallest m whose time is within ``rel_tol`` of the minimum.

    The T_m curves of Table 2 are nearly flat around their minimum (the
    paper's own a = 20 column has 0.347/0.348/0.350 s at 5P/6P/4P), so the
    argmin is noise-sensitive; this plateau-tolerant version is the robust
    statistic for "how many steps are worth taking".
    """
    require(len(times) > 0, "need at least one measurement")
    require(rel_tol >= 0, "tolerance must be non-negative")
    t_min = min(times.values())
    return min(m for m, t in times.items() if t <= (1.0 + rel_tol) * t_min)


def fit_iteration_model(
    iteration_counts: dict[int, int]
) -> tuple[float, float]:
    """Fit ``N_m ≈ c / sqrt(1 − (1−μ̄)^m)``-style decay as ``N_m ≈ c·m^(−p)``.

    The paper wishes ``N_m`` "could be expressed as a function of m"; a
    power law is the pragmatic stand-in that lets :func:`optimal_m` be
    extrapolated beyond measured m.  Returns ``(c, p)`` for
    ``N_m ≈ c·m^{−p}`` fitted on m ≥ 1 by log-log least squares.
    """
    ms = np.array([m for m in sorted(iteration_counts) if m >= 1], dtype=float)
    require(ms.size >= 2, "need at least two m ≥ 1 measurements")
    ns = np.array([iteration_counts[int(m)] for m in ms], dtype=float)
    coeffs = np.polyfit(np.log(ms), np.log(ns), 1)
    p = -float(coeffs[0])
    c = float(np.exp(coeffs[1]))
    return c, p
