"""Analysis layer: the performance model of Section 4 and reporting.

* :mod:`repro.analysis.models` — the execution-time model
  ``T_m = (A + m·B)·N_m`` (4.1), the two inequalities (4.2) that decide
  when m+1 steps beat m, and optimal-m selection;
* :mod:`repro.analysis.condition` — κ(M_m⁻¹K)-versus-m studies and the
  Adams-1982 bound;
* :mod:`repro.analysis.reporting` — paper-style ASCII tables.
"""

from repro.analysis.condition import ConditionStudy, condition_study
from repro.analysis.models import (
    Inequality42,
    PerformanceModel,
    effective_optimal_m,
    fit_iteration_model,
    inequality_42,
    optimal_m,
)
from repro.analysis.reporting import Table, ascii_plot, format_table

__all__ = [
    "ConditionStudy",
    "condition_study",
    "Inequality42",
    "PerformanceModel",
    "effective_optimal_m",
    "fit_iteration_model",
    "inequality_42",
    "optimal_m",
    "Table",
    "ascii_plot",
    "format_table",
]
