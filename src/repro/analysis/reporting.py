"""Paper-style ASCII tables.

The benches regenerate Tables 1–3 and the figures as text; this module
keeps the formatting in one place so every bench prints the same way and
EXPERIMENTS.md can quote the output verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util import require

__all__ = ["Table", "format_table", "ascii_plot"]


def _render(value) -> str:
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == float("inf"):
            return "∞"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class Table:
    """A simple column-aligned table with a title and optional notes."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        require(len(values) == len(self.columns), "row width mismatch")
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows, self.notes)


def ascii_plot(
    title: str,
    xs,
    series: dict[str, list],
    width: int = 64,
    height: int = 16,
) -> str:
    """Monospace line plot of one or more series over a common x-grid.

    Used by the examples to show the eigenvalue maps ``q(μ)`` of competing
    parametrizations; each series gets the first letter of its label as
    its marker.
    """
    require(len(series) > 0, "need at least one series")
    xs = [float(x) for x in xs]
    require(len(xs) >= 2, "need at least two points")
    all_ys = [float(y) for ys in series.values() for y in ys]
    lo, hi = min(all_ys), max(all_ys)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    x_min, x_max = min(xs), max(xs)

    def col(x):
        return int(round((x - x_min) / (x_max - x_min) * (width - 1)))

    def row(y):
        return (height - 1) - int(round((y - lo) / (hi - lo) * (height - 1)))

    for label, ys in series.items():
        require(len(ys) == len(xs), f"series {label!r} length mismatch")
        marker = label[0]
        for x, y in zip(xs, ys):
            grid[row(float(y))][col(x)] = marker

    legend = "   ".join(f"{label[0]} = {label}" for label in series)
    lines = [title, f"y ∈ [{lo:.3g}, {hi:.3g}]  x ∈ [{x_min:.3g}, {x_max:.3g}]"]
    lines += ["|" + "".join(r) for r in grid]
    lines += ["+" + "-" * width, f"  {legend}"]
    return "\n".join(lines)


def format_table(
    title: str,
    columns: list[str],
    rows: list[list],
    notes: list[str] | None = None,
) -> str:
    """Render a monospace table."""
    rendered = [[_render(v) for v in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "
    header = sep.join(c.rjust(w) for c, w in zip(columns, widths))
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    for row in rendered:
        lines.append(sep.join(cell.rjust(w) for cell, w in zip(row, widths)))
    lines.append(rule)
    for note in notes or []:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
