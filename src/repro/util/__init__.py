"""Shared numerical utilities for the Adams-1983 reproduction.

Small, dependency-free helpers used across the core solver, the multicolor
machinery, and the machine simulators: norms, inner products with counting,
SPD/symmetry validation, and permutation helpers.
"""

from repro.util.linalg import (
    OperationCounter,
    as_dense,
    inf_norm,
    inner,
    permutation_matrix,
)
from repro.util.validation import (
    check_spd,
    is_diagonal,
    is_spd,
    is_symmetric,
    require,
)

__all__ = [
    "OperationCounter",
    "as_dense",
    "inf_norm",
    "inner",
    "permutation_matrix",
    "check_spd",
    "is_diagonal",
    "is_spd",
    "is_symmetric",
    "require",
]
