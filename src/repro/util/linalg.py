"""Basic linear-algebra helpers.

The paper's algorithms are expressed in terms of three primitives — the inner
product ``(x, y) = xᵀy``, the infinity norm used by the stopping test in
Algorithm 1, and sparse matrix-vector products.  This module provides those
plus an :class:`OperationCounter` that the instrumented solvers use to report
how many of each primitive they executed (the paper's whole argument is about
*how many inner products* an iteration costs, so we count them explicitly
rather than inferring them).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

__all__ = [
    "OperationCounter",
    "as_dense",
    "inf_norm",
    "inner",
    "permutation_matrix",
]


def inner(x: np.ndarray, y: np.ndarray) -> float:
    """Euclidean inner product ``(x, y) = xᵀ y`` as a Python float."""
    return float(np.dot(np.asarray(x).ravel(), np.asarray(y).ravel()))


def inf_norm(x: np.ndarray) -> float:
    """``‖x‖_∞`` — the norm used by Algorithm 1's convergence test."""
    x = np.asarray(x)
    if x.size == 0:
        return 0.0
    return float(np.max(np.abs(x)))


def as_dense(a) -> np.ndarray:
    """Return ``a`` as a dense ndarray (accepts sparse matrices and arrays)."""
    if sp.issparse(a):
        return a.toarray()
    return np.asarray(a)


def permutation_matrix(perm: np.ndarray) -> sp.csr_matrix:
    """Sparse permutation matrix ``P`` with ``(P x)[i] = x[perm[i]]``.

    Row ``i`` of ``P`` has a single 1 in column ``perm[i]``; consequently
    ``P A Pᵀ`` reorders a matrix so that old index ``perm[i]`` becomes new
    index ``i``.
    """
    perm = np.asarray(perm, dtype=np.int64)
    n = perm.size
    if n and (perm.min() < 0 or perm.max() >= n):
        raise ValueError("perm is not a permutation of 0..n-1")
    if np.unique(perm).size != n:
        raise ValueError("perm contains repeated indices")
    data = np.ones(n)
    rows = np.arange(n)
    return sp.csr_matrix((data, (rows, perm)), shape=(n, n))


@dataclass
class OperationCounter:
    """Tally of the primitives executed by an instrumented solver.

    Attributes
    ----------
    inner_products:
        Number of global inner products (the reduction the paper identifies
        as the parallel bottleneck).
    matvecs:
        Number of products with the full operator ``K``.
    precond_applications:
        Number of applications of ``M⁻¹`` (one per PCG iteration plus the
        initial one).
    precond_steps:
        Total *inner* stationary steps taken by m-step preconditioners
        (``m × precond_applications`` when m is fixed).
    axpys:
        Vector updates of the form ``y ← y + a·x``.
    """

    inner_products: int = 0
    matvecs: int = 0
    precond_applications: int = 0
    precond_steps: int = 0
    axpys: int = 0
    extra: dict = field(default_factory=dict)

    def merge(self, other: "OperationCounter") -> None:
        """Accumulate another counter's totals into this one."""
        self.inner_products += other.inner_products
        self.matvecs += other.matvecs
        self.precond_applications += other.precond_applications
        self.precond_steps += other.precond_steps
        self.axpys += other.axpys
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + value

    def as_dict(self) -> dict:
        out = {
            "inner_products": self.inner_products,
            "matvecs": self.matvecs,
            "precond_applications": self.precond_applications,
            "precond_steps": self.precond_steps,
            "axpys": self.axpys,
        }
        out.update(self.extra)
        return out
