"""Structural validation predicates.

The preconditioning theory in the paper requires specific structure at every
layer: ``K`` symmetric positive definite (Section 1), the preconditioner ``M``
symmetric positive definite (Section 2.1), the multicolor diagonal blocks
``D_ii`` and same-node blocks ``B₁₂, B₃₄, B₅₆`` *diagonal* matrices (system
3.1).  These checks are used by constructors and by the test-suite so that a
structural violation fails loudly instead of silently producing a
non-convergent solver.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = ["require", "is_symmetric", "is_spd", "check_spd", "is_diagonal"]


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def is_symmetric(a, tol: float = 1e-10) -> bool:
    """True when ``‖A − Aᵀ‖_max ≤ tol · max(1, ‖A‖_max)``."""
    if sp.issparse(a):
        diff = (a - a.T).tocoo()
        if diff.nnz == 0:
            return True
        scale = max(1.0, float(np.max(np.abs(a.data))) if a.nnz else 1.0)
        return float(np.max(np.abs(diff.data))) <= tol * scale
    a = np.asarray(a)
    scale = max(1.0, float(np.max(np.abs(a))) if a.size else 1.0)
    return float(np.max(np.abs(a - a.T))) <= tol * scale if a.size else True


def _min_eig_estimate(a) -> float:
    """Smallest eigenvalue (dense exact for small, Lanczos for large)."""
    n = a.shape[0]
    if n <= 400:
        dense = a.toarray() if sp.issparse(a) else np.asarray(a, dtype=float)
        return float(np.linalg.eigvalsh(dense)[0])
    vals = spla.eigsh(
        a.asfptype() if sp.issparse(a) else np.asarray(a, dtype=float),
        k=1,
        which="SA",
        return_eigenvectors=False,
        tol=1e-8,
    )
    return float(vals[0])


def is_spd(a, tol: float = 1e-10) -> bool:
    """True when ``a`` is symmetric with all eigenvalues > tol·‖a‖."""
    if not is_symmetric(a, tol=max(tol, 1e-10)):
        return False
    if a.shape[0] == 0:
        return True
    scale = float(abs(a).max()) if not sp.issparse(a) else float(np.max(np.abs(a.data)))
    return _min_eig_estimate(a) > -tol * max(1.0, scale)


def check_spd(a, name: str = "matrix", tol: float = 1e-10) -> None:
    """Raise ``ValueError`` unless ``a`` is symmetric positive definite."""
    require(is_symmetric(a, tol=max(tol, 1e-10)), f"{name} is not symmetric")
    if a.shape[0] == 0:
        return
    lam = _min_eig_estimate(a)
    require(lam > 0.0, f"{name} is not positive definite (λ_min = {lam:g})")


def is_diagonal(a, tol: float = 0.0) -> bool:
    """True when all off-diagonal entries of ``a`` are ≤ tol in magnitude."""
    if sp.issparse(a):
        coo = a.tocoo()
        off = coo.row != coo.col
        if not np.any(off):
            return True
        return float(np.max(np.abs(coo.data[off]))) <= tol
    a = np.asarray(a)
    off = a - np.diag(np.diag(a)) if a.ndim == 2 and a.shape[0] == a.shape[1] else a
    return float(np.max(np.abs(off))) <= tol if off.size else True
