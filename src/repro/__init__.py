"""repro — reproduction of Adams (1983), *An M-Step Preconditioned Conjugate
Gradient Method for Parallel Computation* (NASA CR-172150 / ICPP 1983).

Quickstart
----------
>>> from repro import plate_problem, solve_mstep_ssor
>>> problem = plate_problem(6)                       # the paper's 60-equation plate
>>> solve = solve_mstep_ssor(problem, m=0)           # plain CG
>>> better = solve_mstep_ssor(problem, m=4, parametrized=True)
>>> better.iterations < solve.iterations
True

Package map
-----------
``repro.core``        Algorithm 1 (PCG), splittings, the m-step
                      preconditioner, polynomial parametrization, spectra.
``repro.kernels``     The kernel backend layer: cached color-block
                      triangular sweeps, fused in-place updates, workspace
                      pools (``"vectorized"``/``"reference"`` dispatch).
``repro.multicolor``  Multicolor orderings, the block system (3.1), and the
                      Conrad–Wallach m-step SSOR (Algorithm 2).
``repro.fem``         The plane-stress plate substrate (Figures 1–2).
``repro.machines``    Simulators of the CYBER 203/205 and the Finite Element
                      Machine with calibrated cost models (Sections 3–4).
``repro.analysis``    The performance model (4.1)/(4.2) and reporting.
``repro.driver``      One-call m-step multicolor SSOR PCG solves.
``repro.pipeline``    The plan → compile → execute pipeline: the scenario
                      registry (``ProblemSpec``), the multi-load workload
                      registry (``WorkloadSpec``), declarative solve plans
                      (``SolverPlan``), and compiled sessions
                      (``SolverSession``) serving many schedule cells and
                      right-hand sides — including batched lockstep
                      machine-simulator sweeps.
``repro.parallel``    Real parallelism: the worker-process executor that
                      shards block-PCG column groups
                      (``sharded_block_pcg``) and machine-schedule cells
                      (``sharded_schedule``) across local cores, bitwise
                      identical to the serial paths.
"""

from repro.core import (
    BlockPCGResult,
    DeltaInfNorm,
    IdentityPreconditioner,
    JacobiSplitting,
    MStepPreconditioner,
    PCGResult,
    RelativeResidual,
    SSORSplitting,
    block_pcg,
    cg,
    condition_number,
    fit_report,
    least_squares_coefficients,
    minmax_coefficients,
    neumann_coefficients,
    pcg,
    spectrum_interval,
)
from repro.driver import (
    MStepSolve,
    build_blocked_system,
    mstep_coefficients,
    solve_mstep_ssor,
    ssor_interval,
)
from repro.fem import (
    ElasticMaterial,
    PlateMesh,
    anisotropic_problem,
    plate_problem,
    poisson_problem,
    variable_plate_problem,
)
from repro.multicolor import BlockedMatrix, MStepSSOR, MulticolorOrdering
from repro.parallel import sharded_block_pcg, sharded_schedule
from repro.pipeline import (
    ProblemSpec,
    SolverPlan,
    SolverSession,
    WorkloadSpec,
    available_scenarios,
    available_workloads,
    build_scenario,
    build_workload,
    register_scenario,
    register_workload,
)

__version__ = "1.0.0"

__all__ = [
    "BlockPCGResult",
    "DeltaInfNorm",
    "IdentityPreconditioner",
    "JacobiSplitting",
    "MStepPreconditioner",
    "PCGResult",
    "RelativeResidual",
    "SSORSplitting",
    "block_pcg",
    "cg",
    "condition_number",
    "fit_report",
    "least_squares_coefficients",
    "minmax_coefficients",
    "neumann_coefficients",
    "pcg",
    "spectrum_interval",
    "MStepSolve",
    "build_blocked_system",
    "mstep_coefficients",
    "solve_mstep_ssor",
    "ssor_interval",
    "ElasticMaterial",
    "PlateMesh",
    "anisotropic_problem",
    "plate_problem",
    "poisson_problem",
    "variable_plate_problem",
    "BlockedMatrix",
    "MStepSSOR",
    "MulticolorOrdering",
    "ProblemSpec",
    "SolverPlan",
    "SolverSession",
    "WorkloadSpec",
    "available_scenarios",
    "available_workloads",
    "build_scenario",
    "build_workload",
    "register_scenario",
    "register_workload",
    "sharded_block_pcg",
    "sharded_schedule",
    "__version__",
]
