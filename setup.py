"""Shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The execution environment has no network and no `wheel` package, so the
PEP-517 editable path (which builds a wheel) is unavailable; this file lets
setuptools' classic `develop` command handle `pip install -e .` instead.
All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
